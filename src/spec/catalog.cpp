#include "spec/catalog.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/keyval.hpp"

namespace lazyckpt::spec {
namespace {

/// The anchor configuration (paper Sec. 4): 20K-node petascale machine,
/// MTBF 11 h, 30-minute checkpoints, Weibull k = 0.6, 500 h of science.
/// Every mtbf-hint is written explicitly (not the `derive` sentinel) so a
/// scenario-driven bench is bit-identical to its previous hand-wired form:
/// Weibull::from_mtbf_and_shape(11, 0.6).mean() round-trips the MTBF
/// analytically, not bitwise.
std::vector<Scenario> build_catalog() {
  std::vector<Scenario> catalog;

  catalog.push_back(Scenario{
      .name = "campaign-week",
      .title = "500 h of science as one-week allocations with queue gaps",
      .distribution = "weibull:mtbf=11,k=0.6",
      .storage = "constant:beta=0.5",
      .policy = "ilazy:0.6",
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 60,
      .seed = 71,
      .allocation_hours = 168.0,
      .gap_hours = 24.0,
  });

  // Fig. 1 design points: fixed-frequency (hourly) checkpointing under
  // exponential failures as the system scales.  bench/fig01_io_breakdown
  // rebuilds its 5-hourly variant by rewriting policy/oci on these — the
  // entries pin the hourly baseline.
  catalog.push_back(Scenario{
      .name = "fig01-exascale-100K",
      .title = "Fig. 1 at exascale-100K: hourly checkpoint I/O breakdown",
      .distribution = "exponential:mtbf=2.2",
      .storage = "constant:beta=0.5",
      .policy = "periodic:1",
      .oci_hours = 1.0,
      .mtbf_hint_hours = 2.2,
      .shape_hint = 0.6,
      .replicas = 100,
      .seed = 2014,
  });

  catalog.push_back(Scenario{
      .name = "fig01-petascale-10K",
      .title = "Fig. 1 at petascale-10K: hourly checkpoint I/O breakdown",
      .distribution = "exponential:mtbf=22",
      .storage = "constant:beta=0.5",
      .policy = "periodic:1",
      .oci_hours = 1.0,
      .mtbf_hint_hours = 22.0,
      .shape_hint = 0.6,
      .replicas = 100,
      .seed = 2014,
  });

  catalog.push_back(Scenario{
      .name = "fig01-petascale-20K",
      .title = "Fig. 1 at petascale-20K: hourly checkpoint I/O breakdown",
      .distribution = "exponential:mtbf=11",
      .storage = "constant:beta=0.5",
      .policy = "periodic:1",
      .oci_hours = 1.0,
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 100,
      .seed = 2014,
  });

  // Fig. 4 design points: model-vs-simulation runtime curves.  The bench
  // derives its SimulationConfig from these (Daly OCI via the `daly`
  // sentinel) and sweeps periodic intervals around it; the policy key
  // records the reference policy the curve is anchored to.
  catalog.push_back(Scenario{
      .name = "fig04-exascale-100K",
      .title = "Fig. 4 at exascale-100K: model vs simulated runtime",
      .distribution = "exponential:mtbf=2.2",
      .storage = "constant:beta=0.5",
      .policy = "static-oci",
      .mtbf_hint_hours = 2.2,
      .shape_hint = 0.6,
      .replicas = 120,
      .seed = 4,
  });

  catalog.push_back(Scenario{
      .name = "fig04-petascale-20K",
      .title = "Fig. 4 at petascale-20K: model vs simulated runtime",
      .distribution = "exponential:mtbf=11",
      .storage = "constant:beta=0.5",
      .policy = "static-oci",
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 120,
      .seed = 4,
  });

  catalog.push_back(Scenario{
      .name = "fig13",
      .title = "Fig. 13 anchor run: iLazy vs OCI execution progress",
      .distribution = "weibull:mtbf=11,k=0.6",
      .storage = "constant:beta=0.5",
      .policy = "ilazy:0.6",
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 200,
      .seed = 13,
  });

  catalog.push_back(Scenario{
      .name = "fig14-exascale-100K",
      .title = "Fig. 14 at exascale: iLazy vs an increased OCI",
      .distribution = "weibull:mtbf=2.2,k=0.6",
      .storage = "constant:beta=0.5",
      .policy = "ilazy:0.6",
      .mtbf_hint_hours = 2.2,
      .shape_hint = 0.6,
      .replicas = 150,
      .seed = 14,
  });

  catalog.push_back(Scenario{
      .name = "fig14-petascale-20K",
      .title = "Fig. 14 at petascale: iLazy vs an increased OCI",
      .distribution = "weibull:mtbf=11,k=0.6",
      .storage = "constant:beta=0.5",
      .policy = "ilazy:0.6",
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 150,
      .seed = 14,
  });

  catalog.push_back(Scenario{
      .name = "fig15-petascale-20K",
      .title = "Fig. 15: iLazy across operating checkpoint intervals",
      .distribution = "weibull:mtbf=11,k=0.6",
      .storage = "constant:beta=0.5",
      .policy = "static-oci",
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 120,
      .seed = 15,
  });

  catalog.push_back(Scenario{
      .name = "fig16",
      .title = "Fig. 16: iLazy vs linearly increasing intervals",
      .distribution = "weibull:mtbf=11,k=0.6",
      .storage = "constant:beta=0.5",
      .policy = "ilazy:0.6",
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 150,
      .seed = 16,
  });

  catalog.push_back(Scenario{
      .name = "fig19",
      .title = "Fig. 19: Skip checkpointing variants vs the OCI baseline",
      .distribution = "weibull:mtbf=11,k=0.6",
      .storage = "constant:beta=0.5",
      .policy = "static-oci",
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 150,
      .seed = 19,
  });

  catalog.push_back(Scenario{
      .name = "fig20",
      .title = "Fig. 20: composing Skip with iLazy",
      .distribution = "weibull:mtbf=11,k=0.6",
      .storage = "constant:beta=0.5",
      .policy = "ilazy:0.6",
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 150,
      .seed = 20,
  });

  catalog.push_back(Scenario{
      .name = "fig21",
      .title = "Fig. 21: bounded iLazy (no-performance-loss cap)",
      .distribution = "weibull:mtbf=11,k=0.6",
      .storage = "constant:beta=0.5",
      .policy = "bounded-ilazy:0.6",
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 200,
      .seed = 21,
  });

  catalog.push_back(Scenario{
      .name = "hero",
      .title = "hero run default: iLazy on petascale-20K",
      .distribution = "weibull:mtbf=11,k=0.6",
      .storage = "constant:beta=0.5",
      .policy = "ilazy:0.6",
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 150,
      .seed = 1,
  });

  catalog.push_back(Scenario{
      .name = "quickstart",
      .title = "quickstart: OCI vs iLazy on petascale-20K",
      .distribution = "weibull:mtbf=11,k=0.6",
      .storage = "constant:beta=0.5",
      .policy = "static-oci",
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 200,
      .seed = 42,
  });

  catalog.push_back(Scenario{
      .name = "spider-trace",
      .title = "iLazy over a synthetic Spider-like bandwidth trace",
      .distribution = "weibull:mtbf=11,k=0.6",
      .storage = "spider:size_gb=150,span=1000",
      .policy = "ilazy:0.6",
      .oci_hours = 3.0,
      .mtbf_hint_hours = 11.0,
      .shape_hint = 0.6,
      .replicas = 100,
      .seed = 18,
  });

  // Tier crossover family (DESIGN.md §5k, bench/fig24_tier_crossover):
  // the same machine under deepening storage hierarchies — PFS only, a
  // burst buffer in front, and a ReStore-style in-memory replica tier in
  // front of that.  The bench rewrites `policy` across {static-oci,
  // ilazy:0.6, periodic:1} on these anchors; oci stays on the `daly`
  // sentinel so each hierarchy derives its own tier-weighted Daly OCI.
  for (const auto& [machine, mtbf] :
       {std::pair<const char*, double>{"petascale-20K", 11.0},
        std::pair<const char*, double>{"exascale-100K", 2.2}}) {
    const auto tier_scenario = [&](const char* depth, const char* subtitle,
                                   std::vector<std::string> tiers) {
      Scenario s;
      s.name = std::string("tier-") + depth + "-" + machine;
      s.title = std::string("tier crossover on ") + machine + ": " + subtitle;
      s.distribution = "weibull:mtbf=" + keyval::format_double(mtbf) +
                       ",k=0.6";
      s.policy = "ilazy:0.6";
      s.tiers = std::move(tiers);
      s.mtbf_hint_hours = mtbf;
      s.shape_hint = 0.6;
      s.replicas = 120;
      s.seed = 24;
      return s;
    };
    catalog.push_back(tier_scenario("pfs", "parallel filesystem only",
                                    {"pfs:beta=0.5"}));
    catalog.push_back(
        tier_scenario("bb", "burst buffer + PFS flush every 4th",
                      {"bb:beta=0.05,survivable=0.8", "pfs:beta=0.5,every=4"}));
    catalog.push_back(
        tier_scenario("mem3", "memory replica + burst buffer + PFS",
                      {"mem:beta=0.005,survivable=0.5",
                       "bb:beta=0.05,survivable=0.8,every=4",
                       "pfs:beta=0.5,every=2"}));
  }

  for (const Scenario& scenario : catalog) scenario.validate();
  return catalog;
}

}  // namespace

const std::vector<Scenario>& builtin_scenarios() {
  static const std::vector<Scenario> catalog = build_catalog();
  return catalog;
}

const Scenario& builtin_scenario(std::string_view name) {
  for (const Scenario& scenario : builtin_scenarios()) {
    if (scenario.name == name) return scenario;
  }
  std::string known;
  for (const Scenario& scenario : builtin_scenarios()) {
    if (!known.empty()) known += ", ";
    known += scenario.name;
  }
  throw InvalidArgument("unknown scenario '" + std::string(name) +
                        "' (built-in: " + known + ")");
}

}  // namespace lazyckpt::spec
