#include "spec/runner.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/model/oci.hpp"
#include "core/policy/factory.hpp"
#include "io/factory.hpp"
#include "io/hierarchy.hpp"
#include "obs/trace.hpp"
#include "stats/factory.hpp"

namespace lazyckpt::spec {
namespace {

/// MTBF the policies should assume: the explicit hint, else the failure
/// distribution's mean.  Catalog scenarios pin the hint explicitly where
/// bit-identity with a hand-wired bench matters (Weibull::from_mtbf's
/// mean() round-trips the MTBF analytically, not bitwise).
double resolve_mtbf_hint(const Scenario& scenario,
                         const stats::Distribution& inter_arrival) {
  return scenario.mtbf_hint_hours > 0.0 ? scenario.mtbf_hint_hours
                                        : inter_arrival.mean();
}

sim::SimulationConfig config_for(const Scenario& scenario,
                                 const stats::Distribution& inter_arrival,
                                 const io::StorageModel& storage) {
  const double mtbf = resolve_mtbf_hint(scenario, inter_arrival);
  sim::SimulationConfig config;
  config.compute_hours = scenario.compute_hours;
  config.alpha_oci_hours =
      scenario.oci_hours > 0.0
          ? scenario.oci_hours
          : core::daly_oci(storage.checkpoint_time(0.0), mtbf);
  config.mtbf_hint_hours = mtbf;
  config.shape_hint = scenario.shape_hint;
  config.record_timeline = scenario.record_timeline;
  config.checkpoint_blocking_fraction = scenario.blocking_fraction;
  config.time_budget_hours = scenario.time_budget_hours;
  return config;
}

sim::HierarchyConfig hierarchy_config_for(
    const Scenario& scenario, const stats::Distribution& inter_arrival,
    const io::StorageHierarchy& hierarchy) {
  const double mtbf = resolve_mtbf_hint(scenario, inter_arrival);
  sim::HierarchyConfig config;
  config.compute_hours = scenario.compute_hours;
  config.alpha_oci_hours =
      scenario.oci_hours > 0.0
          ? scenario.oci_hours
          : core::tiered_daly_oci(hierarchy.betas_at(0.0),
                                  hierarchy.cumulative_periods(), mtbf);
  config.mtbf_hint_hours = mtbf;
  config.shape_hint = scenario.shape_hint;
  return config;
}

/// The flattened single-level view of one hierarchy run, so hierarchy
/// scenarios share the table/JSON/cache plumbing of ordinary ones.
sim::RunMetrics flatten_hierarchy_run(const sim::HierarchyRunMetrics& run,
                                      const io::StorageHierarchy& hierarchy) {
  sim::RunMetrics flat;
  flat.makespan_hours = run.makespan_hours;
  flat.compute_hours = run.compute_hours;
  flat.checkpoint_hours = run.io_hours();
  flat.wasted_hours = run.wasted_hours;
  flat.restart_hours = run.restart_hours;
  flat.failures = run.failures;
  flat.checkpoints_written = run.tiers.empty() ? 0 : run.tiers[0].checkpoints;
  flat.checkpoints_skipped = run.checkpoints_skipped;
  flat.data_written_gb = run.data_written_gb(hierarchy);
  return flat;
}

}  // namespace

sim::SimulationConfig simulation_config(const Scenario& scenario) {
  scenario.validate();
  require(!scenario.is_tiered(),
          "simulation_config: scenario '" + scenario.name +
              "' is a hierarchy scenario (use hierarchy_config)");
  const auto inter_arrival = stats::make_distribution(scenario.distribution);
  const auto storage = io::make_storage(scenario.storage);
  return config_for(scenario, *inter_arrival, *storage);
}

sim::HierarchyConfig hierarchy_config(const Scenario& scenario) {
  scenario.validate();
  require(scenario.is_tiered(),
          "hierarchy_config: scenario '" + scenario.name +
              "' has no tier.N lines (not a hierarchy scenario)");
  const auto inter_arrival = stats::make_distribution(scenario.distribution);
  const io::StorageHierarchy hierarchy =
      io::make_hierarchy(scenario.tier_spec());
  return hierarchy_config_for(scenario, *inter_arrival, hierarchy);
}

sim::CampaignConfig campaign_config(const Scenario& scenario) {
  require(scenario.is_campaign(),
          "campaign_config: scenario '" + scenario.name +
              "' has no allocation size (not a campaign)");
  sim::CampaignConfig config;
  config.base = simulation_config(scenario);
  config.allocation_hours = scenario.allocation_hours;
  config.gap_hours = scenario.gap_hours;
  config.max_allocations = scenario.max_allocations;
  return config;
}

ScenarioResult ScenarioRunner::run(const Scenario& scenario) const {
  scenario.validate();

  ScenarioResult result;
  result.scenario = scenario;
  if (options_.max_replicas > 0) {
    result.scenario.replicas =
        std::min(result.scenario.replicas, options_.max_replicas);
  }
  const Scenario& run_as = result.scenario;

  // One span and one flow per request: the span's args say *what* ran
  // (scenario, policy, replicas); the flow id links this request through
  // cache lookup, campaign allocations, and per-worker replica blocks
  // across threads (DESIGN.md §5f).  Telemetry only — no result reads it.
  const bool telemetry = obs::enabled();
  const obs::TraceSpan span(
      "spec.run",
      telemetry
          ? std::vector<obs::TraceArg>{
                obs::TraceArg::str("scenario", run_as.name),
                obs::TraceArg::str("policy", run_as.policy),
                obs::TraceArg::num("replicas",
                                   static_cast<double>(run_as.replicas))}
          : std::vector<obs::TraceArg>{});
  const obs::ScopedFlow flow("spec.flow",
                             telemetry ? obs::new_flow_id() : 0);

  // The cache is keyed on the scenario as run (post-clamping), so a hit
  // replays exactly what a fresh computation of `run_as` would produce.
  if (options_.cache != nullptr) {
    if (auto cached = options_.cache->fetch(run_as)) {
      return *std::move(cached);
    }
  }

  const auto inter_arrival = stats::make_distribution(run_as.distribution);
  const auto policy = core::make_policy(run_as.policy);

  if (run_as.is_tiered()) {
    const io::StorageHierarchy hierarchy =
        io::make_hierarchy(run_as.tier_spec());
    const sim::HierarchyConfig config =
        hierarchy_config_for(run_as, *inter_arrival, hierarchy);
    const auto raw_runs = sim::run_hierarchy_replicas_raw(
        config, hierarchy, *policy, *inter_arrival, run_as.replicas,
        run_as.seed);
    result.hierarchy = sim::aggregate_hierarchy(hierarchy, raw_runs);
    result.runs.reserve(raw_runs.size());
    for (const sim::HierarchyRunMetrics& run : raw_runs) {
      result.runs.push_back(flatten_hierarchy_run(run, hierarchy));
    }
    result.aggregate = sim::aggregate(result.runs);
    if (options_.cache != nullptr) options_.cache->store(result);
    return result;
  }

  const auto storage = io::make_storage(run_as.storage);

  if (run_as.is_campaign()) {
    const sim::CampaignConfig config = campaign_config(run_as);
    const auto campaigns = sim::run_campaign_replicas(
        config, *policy, *inter_arrival, *storage, run_as.replicas,
        run_as.seed);
    result.campaign = sim::aggregate_campaigns(campaigns);
    // Cross-allocation aggregate over every run the campaigns produced,
    // so table/JSON output has the familiar per-run columns too.
    std::vector<sim::RunMetrics> all_runs;
    for (const auto& campaign : campaigns) {
      all_runs.insert(all_runs.end(), campaign.runs.begin(),
                      campaign.runs.end());
    }
    result.aggregate = sim::aggregate(all_runs);
    if (options_.cache != nullptr) options_.cache->store(result);
    return result;
  }

  const sim::SimulationConfig config =
      config_for(run_as, *inter_arrival, *storage);
  result.runs = sim::run_replicas_raw(config, *policy, *inter_arrival,
                                      *storage, run_as.replicas, run_as.seed);
  result.aggregate = sim::aggregate(result.runs);
  if (options_.cache != nullptr) options_.cache->store(result);
  return result;
}

}  // namespace lazyckpt::spec
