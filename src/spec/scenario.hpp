#pragma once

/// \file scenario.hpp
/// \brief Serializable experiment specifications (DESIGN.md §5g).
///
/// A Scenario is one complete experiment configuration — machine/workload,
/// failure distribution, storage model, checkpoint policy, replica count,
/// seed, and output selection — as *data* instead of compiled C++.  The
/// paper's evaluation is ~25 such configurations; before this layer each
/// bench hand-assembled SimulationConfig + Distribution + ConstantStorage +
/// make_policy with copy-pasted constants.
///
/// Text format: `key = value` lines, one scenario per file, `#` comments,
/// blank lines ignored.  Distribution/storage/policy values reuse the
/// factory mini-grammars (stats::make_distribution, io::make_storage,
/// core::make_policy).  The writer emits a canonical form (fixed key
/// order, shortest-round-trip numbers, defaults omitted) such that
/// parse(to_string(s)) == s for every valid scenario — enforced by
/// tests/test_spec.cpp over the whole built-in catalog.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lazyckpt::spec {

/// Where lazyckpt-run sends a scenario's results.
enum class OutputFormat : std::uint8_t {
  kTable,  ///< banner + aligned text table (bench-style, diffable)
  kJson,   ///< one deterministic JSON object
};

/// One serializable experiment configuration.
///
/// Derivation sentinels keep scenarios concise: mtbf_hint_hours = 0 means
/// "use the failure distribution's mean", oci_hours = 0 means "Daly OCI
/// from the storage β at t=0 and the MTBF hint" — exactly the hand-wired
/// bench construction this layer replaces.
struct Scenario {
  std::string name;          ///< identifier ("fig13"); [A-Za-z0-9_.-]
  std::string title;         ///< optional one-line description

  std::string distribution;  ///< stats::make_distribution spec
  std::string storage;       ///< io::make_storage spec (single-level mode)
  std::string policy;        ///< core::make_policy spec

  double compute_hours = 500.0;  ///< useful work W
  double oci_hours = 0.0;        ///< reference OCI; 0 = Daly(β, MTBF hint)
  double mtbf_hint_hours = 0.0;  ///< policy MTBF prior; 0 = distribution mean
  double shape_hint = 1.0;       ///< Weibull-shape prior handed to policies

  std::size_t replicas = 100;
  std::uint64_t seed = 1;

  bool record_timeline = false;           ///< collect TimelinePoints
  double blocking_fraction = 1.0;         ///< σ, see SimulationConfig
  double time_budget_hours = 0.0;         ///< per-run allocation cap (0 = ∞)

  /// Campaign mode (sim::run_campaign_replicas) when allocation_hours > 0:
  /// chained fixed-size allocations with queue-wait gaps.
  double allocation_hours = 0.0;
  double gap_hours = 0.0;
  std::size_t max_allocations = 100;

  OutputFormat output = OutputFormat::kTable;

  /// Storage-hierarchy mode (DESIGN.md §5k): tier specs fastest-first,
  /// written as `tier.1 = mem:…`, `tier.2 = bb:…`, … lines and joined
  /// with '|' into one io::make_hierarchy spec.  Mutually exclusive with
  /// `storage`; hierarchy scenarios run the sim/hierarchy event loop and
  /// support neither campaign mode, timelines, async writes, nor time
  /// budgets (validate() enforces all of this).
  std::vector<std::string> tiers{};

  bool operator==(const Scenario&) const = default;

  /// True when this scenario runs as a campaign.
  [[nodiscard]] bool is_campaign() const noexcept {
    return allocation_hours > 0.0;
  }

  /// True when this scenario runs a storage hierarchy.
  [[nodiscard]] bool is_tiered() const noexcept { return !tiers.empty(); }

  /// The tier specs joined into one io::make_hierarchy spec
  /// ("mem:…|bb:…|pfs:…").  Empty for single-level scenarios.
  [[nodiscard]] std::string tier_spec() const;

  /// Throws InvalidArgument (naming the field) unless every field is in
  /// its documented domain and the three factory specs parse.
  void validate() const;
};

/// Parse the scenario text format.  Unknown keys, malformed values, and
/// duplicate keys throw InvalidArgument naming the offending token; the
/// result is validate()d before being returned.
[[nodiscard]] Scenario parse_scenario(std::string_view text);

/// Read and parse one scenario file.  Throws IoError when the file cannot
/// be read, InvalidArgument when it does not parse.
[[nodiscard]] Scenario load_scenario(const std::string& path);

/// Canonical text form: fixed key order, shortest-round-trip numbers,
/// default-valued optional keys omitted.  parse(to_string(s)) == s.
[[nodiscard]] std::string to_string(const Scenario& scenario);

/// Canonical *file* form: a fixed header comment plus to_string().  This
/// is byte-for-byte what save_scenario writes and what `lazyckpt-run
/// --dump` prints, so checked-in scenario files can be regenerated and
/// diffed.
[[nodiscard]] std::string to_file_string(const Scenario& scenario);

/// Write `scenario` in canonical file form.  Throws IoError on failure.
void save_scenario(const Scenario& scenario, const std::string& path);

}  // namespace lazyckpt::spec
