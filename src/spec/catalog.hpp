#pragma once

/// \file catalog.hpp
/// \brief The built-in scenario catalog (DESIGN.md §5g).
///
/// One named Scenario per paper artifact the scenario-driven benches and
/// `lazyckpt-run` share: the anchor configuration behind Figs. 13–21, the
/// quickstart/hero examples, plus campaign- and trace-storage demos.  The
/// files under bench/scenarios/ are these exact entries serialized with
/// save_scenario (`lazyckpt-run --dump <name>`); tests/test_spec.cpp
/// asserts file ↔ builtin equality and round-trips every entry.

#include <string_view>
#include <vector>

#include "spec/scenario.hpp"

namespace lazyckpt::spec {

/// All built-in scenarios, sorted by name (deterministic --list order).
[[nodiscard]] const std::vector<Scenario>& builtin_scenarios();

/// Look up one built-in scenario.  Throws InvalidArgument naming the
/// unknown scenario and listing the known ones.
[[nodiscard]] const Scenario& builtin_scenario(std::string_view name);

}  // namespace lazyckpt::spec
