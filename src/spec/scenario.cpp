#include "spec/scenario.hpp"

#include <cstddef>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/fp.hpp"
#include "common/keyval.hpp"
#include "core/policy/factory.hpp"
#include "io/factory.hpp"
#include "io/hierarchy.hpp"
#include "stats/factory.hpp"

namespace lazyckpt::spec {
namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string_view output_id(OutputFormat format) {
  return format == OutputFormat::kJson ? "json" : "table";
}

OutputFormat output_from_id(std::string_view id, std::string_view context) {
  if (id == "table") return OutputFormat::kTable;
  if (id == "json") return OutputFormat::kJson;
  throw InvalidArgument("unknown output format '" + std::string(id) +
                        "' in '" + std::string(context) +
                        "' (want table or json)");
}

}  // namespace

std::string Scenario::tier_spec() const {
  std::string joined;
  for (const std::string& tier : tiers) {
    if (!joined.empty()) joined += '|';
    joined += tier;
  }
  return joined;
}

void Scenario::validate() const {
  if (!valid_name(name)) {
    throw InvalidArgument("scenario name '" + name +
                          "' must be non-empty [A-Za-z0-9_.-]");
  }
  // The factory specs must parse; building them is the only reliable check
  // and is cheap (scenarios are parsed far from any hot path).
  (void)stats::make_distribution(distribution);
  if (is_tiered()) {
    require(storage.empty(),
            "scenario " + name +
                ": storage and tier.N are mutually exclusive (a hierarchy "
                "replaces the single-level storage model)");
    (void)io::make_hierarchy(tier_spec());
    require(!is_campaign(),
            "scenario " + name + ": hierarchy scenarios do not support "
                                 "campaign mode");
    require(!record_timeline,
            "scenario " + name + ": hierarchy scenarios do not support "
                                 "record-timeline");
    require(fp::exact_eq(blocking_fraction, 1.0),
            "scenario " + name + ": hierarchy scenarios do not support "
                                 "blocking-fraction (async writes)");
    require(time_budget_hours <= 0.0,
            "scenario " + name + ": hierarchy scenarios do not support "
                                 "time-budget");
  } else {
    (void)io::make_storage(storage);
  }
  (void)core::make_policy(policy);

  require_positive(compute_hours, "scenario " + name + ": compute");
  require_non_negative(oci_hours, "scenario " + name + ": oci");
  require_non_negative(mtbf_hint_hours, "scenario " + name + ": mtbf-hint");
  require_positive(shape_hint, "scenario " + name + ": shape-hint");
  require(replicas > 0, "scenario " + name + ": replicas must be > 0");
  require(blocking_fraction > 0.0 && blocking_fraction <= 1.0,
          "scenario " + name + ": blocking-fraction must lie in (0, 1]");
  require_non_negative(time_budget_hours,
                       "scenario " + name + ": time-budget");
  require_non_negative(allocation_hours, "scenario " + name + ": allocation");
  require_non_negative(gap_hours, "scenario " + name + ": gap");
  if (is_campaign()) {
    require(max_allocations > 0,
            "scenario " + name + ": max-allocations must be > 0");
    require(time_budget_hours <= 0.0,
            "scenario " + name +
                ": time-budget and allocation are mutually exclusive "
                "(the campaign sets per-allocation budgets)");
  }
}

Scenario parse_scenario(std::string_view text) {
  Scenario out;
  std::set<std::string, std::less<>> seen;
  std::vector<std::pair<std::size_t, std::string>> tier_lines;
  int line_no = 0;

  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw InvalidArgument("scenario line " + std::to_string(line_no) +
                            ": '" + std::string(line) + "' is not key = value");
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    if (key.empty() || value.empty()) {
      throw InvalidArgument("scenario line " + std::to_string(line_no) +
                            ": empty key or value in '" + std::string(line) +
                            "'");
    }
    if (!seen.insert(key).second) {
      throw InvalidArgument("scenario line " + std::to_string(line_no) +
                            ": duplicate key '" + key + "'");
    }

    if (key == "name") {
      out.name = value;
    } else if (key == "title") {
      out.title = value;
    } else if (key == "distribution") {
      out.distribution = value;
    } else if (key == "storage") {
      out.storage = value;
    } else if (key == "policy") {
      out.policy = value;
    } else if (key == "compute") {
      out.compute_hours = keyval::parse_double(value, line);
    } else if (key == "oci") {
      out.oci_hours = value == "daly" ? 0.0 : keyval::parse_double(value, line);
    } else if (key == "mtbf-hint") {
      out.mtbf_hint_hours =
          value == "derive" ? 0.0 : keyval::parse_double(value, line);
    } else if (key == "shape-hint") {
      out.shape_hint = keyval::parse_double(value, line);
    } else if (key == "replicas") {
      out.replicas =
          static_cast<std::size_t>(keyval::parse_uint(value, line));
    } else if (key == "seed") {
      out.seed = keyval::parse_uint(value, line);
    } else if (key == "record-timeline") {
      out.record_timeline = keyval::parse_bool(value, line);
    } else if (key == "blocking-fraction") {
      out.blocking_fraction = keyval::parse_double(value, line);
    } else if (key == "time-budget") {
      out.time_budget_hours = keyval::parse_double(value, line);
    } else if (key == "allocation") {
      out.allocation_hours = keyval::parse_double(value, line);
    } else if (key == "gap") {
      out.gap_hours = keyval::parse_double(value, line);
    } else if (key == "max-allocations") {
      out.max_allocations =
          static_cast<std::size_t>(keyval::parse_uint(value, line));
    } else if (key == "output") {
      out.output = output_from_id(value, line);
    } else if (key.starts_with("tier.")) {
      const std::string_view index_text{std::string_view(key).substr(5)};
      const std::uint64_t index = keyval::parse_uint(index_text, line);
      if (index == 0) {
        throw InvalidArgument("scenario line " + std::to_string(line_no) +
                              ": tier indices start at 1");
      }
      tier_lines.emplace_back(static_cast<std::size_t>(index), value);
    } else {
      throw InvalidArgument("scenario line " + std::to_string(line_no) +
                            ": unknown key '" + key + "'");
    }
  }

  if (!tier_lines.empty()) {
    // Tier lines may appear in any order; the indices must be exactly
    // 1..N (duplicates were already rejected by the seen-key set).
    out.tiers.resize(tier_lines.size());
    for (const auto& [index, value] : tier_lines) {
      if (index > out.tiers.size()) {
        throw InvalidArgument(
            "scenario: tier indices must be contiguous 1.." +
            std::to_string(out.tiers.size()) + " but found tier." +
            std::to_string(index));
      }
      out.tiers[index - 1] = value;
    }
  }

  out.validate();
  return out;
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot read scenario file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_scenario(buffer.str());
  } catch (const InvalidArgument& error) {
    throw InvalidArgument(path + ": " + error.what());
  }
}

std::string to_string(const Scenario& scenario) {
  const Scenario defaults;
  std::string out;
  const auto line = [&out](std::string_view key, std::string_view value) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  };

  line("name", scenario.name);
  if (!scenario.title.empty()) line("title", scenario.title);
  line("distribution", scenario.distribution);
  if (scenario.is_tiered()) {
    for (std::size_t level = 0; level < scenario.tiers.size(); ++level) {
      line("tier." + std::to_string(level + 1), scenario.tiers[level]);
    }
  } else {
    line("storage", scenario.storage);
  }
  line("policy", scenario.policy);
  line("compute", keyval::format_double(scenario.compute_hours));
  line("oci", scenario.oci_hours <= 0.0
                  ? "daly"
                  : keyval::format_double(scenario.oci_hours));
  line("mtbf-hint", scenario.mtbf_hint_hours <= 0.0
                        ? "derive"
                        : keyval::format_double(scenario.mtbf_hint_hours));
  line("shape-hint", keyval::format_double(scenario.shape_hint));
  line("replicas", std::to_string(scenario.replicas));
  line("seed", std::to_string(scenario.seed));
  if (scenario.record_timeline) line("record-timeline", "true");
  if (fp::exact_ne(scenario.blocking_fraction, defaults.blocking_fraction)) {
    line("blocking-fraction",
         keyval::format_double(scenario.blocking_fraction));
  }
  if (fp::exact_ne(scenario.time_budget_hours, defaults.time_budget_hours)) {
    line("time-budget", keyval::format_double(scenario.time_budget_hours));
  }
  if (scenario.is_campaign()) {
    line("allocation", keyval::format_double(scenario.allocation_hours));
    line("gap", keyval::format_double(scenario.gap_hours));
    line("max-allocations", std::to_string(scenario.max_allocations));
  }
  if (scenario.output != defaults.output) {
    line("output", output_id(scenario.output));
  }
  return out;
}

std::string to_file_string(const Scenario& scenario) {
  return "# lazyckpt scenario (DESIGN.md \xC2\xA7"
         "5g); run with: lazyckpt-run <this file>\n" +
         to_string(scenario);
}

void save_scenario(const Scenario& scenario, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open scenario file for writing: " + path);
  out << to_file_string(scenario);
  if (!out) throw IoError("failed writing scenario file: " + path);
}

}  // namespace lazyckpt::spec
