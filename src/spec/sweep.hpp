#pragma once

/// \file sweep.hpp
/// \brief Multi-scenario sweep files: one parameter grid per file
/// (DESIGN.md §5i).
///
/// A `.scn.sweep` file uses the scenario `key = value` grammar with one
/// extension: a value may be a list `[ v1 | v2 | v3 ]` ('|'-separated,
/// because factory specs contain commas), and the file expands to the
/// cross product of all list values.  Grid points have no spelled names —
/// each point's identity is *content-derived*: its name is
/// `pt-<128-bit digest of its canonical text>`, computed after
/// normalizing name/title/output away.  Two sweep files that overlap on a
/// grid point therefore produce byte-identical scenarios with identical
/// names — and identical result-cache keys, so overlapping grids share
/// cache entries for free.
///
/// Expansion dedupes identical points (e.g. `policy = [daly | daly]`) and
/// returns points sorted by digest, so the order is a pure function of
/// the grid content — the same on every machine, independent of key order
/// in the file.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "spec/scenario.hpp"

namespace lazyckpt::spec {

/// Ceiling on the expanded (pre-dedup) grid size; larger grids throw.
inline constexpr std::size_t kMaxSweepPoints = 4096;

/// One expanded grid point.
struct SweepPoint {
  Scenario scenario;  ///< name = "pt-<key_hex>", title empty
  std::string key_hex;  ///< 32-hex content digest of the canonical text

  bool operator==(const SweepPoint&) const = default;
};

/// Expand sweep text into its deduplicated grid points, sorted by
/// `key_hex`.  The `name`, `title`, and `output` keys are rejected: point
/// identity is content-derived and output selection belongs to the
/// invoking tool.  Throws InvalidArgument on malformed text, grids over
/// kMaxSweepPoints, or points that fail Scenario::validate().
[[nodiscard]] std::vector<SweepPoint> expand_sweep(std::string_view text);

/// Read and expand one `.scn.sweep` file.  Throws IoError when the file
/// cannot be read, InvalidArgument when it does not expand.
[[nodiscard]] std::vector<SweepPoint> load_sweep(const std::string& path);

}  // namespace lazyckpt::spec
