#pragma once

/// \file runner.hpp
/// \brief Execute a Scenario through the simulation engine (DESIGN.md §5g).
///
/// The runner is pure re-plumbing: it resolves the scenario's factory
/// specs, derives the same SimulationConfig the benches used to
/// hand-assemble (Daly OCI from β and the MTBF hint, unless overridden),
/// and hands off to sim::run_replicas / sim::run_campaign_replicas — so a
/// scenario-driven run is bit-identical to the equivalent hand-wired one,
/// inherits the parallel engine (LAZYCKPT_THREADS) and the tracing layer,
/// and shares the paper's "same seed ⇒ same failure arrival times"
/// fair-comparison property.

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/engine.hpp"
#include "sim/hierarchy.hpp"
#include "sim/metrics.hpp"
#include "sim/sweep.hpp"
#include "spec/scenario.hpp"

namespace lazyckpt::spec {

/// SimulationConfig derived from `scenario`: mtbf hint falls back to the
/// distribution mean, the reference OCI to Daly(β(0), MTBF hint).  Throws
/// InvalidArgument on unresolvable specs.
[[nodiscard]] sim::SimulationConfig simulation_config(
    const Scenario& scenario);

/// CampaignConfig derived from `scenario` (requires is_campaign()).
[[nodiscard]] sim::CampaignConfig campaign_config(const Scenario& scenario);

/// HierarchyConfig derived from `scenario` (requires is_tiered()): the
/// reference OCI falls back to Daly with the tier-weighted effective β
/// (core::tiered_daly_oci over betas_at(0) and the cumulative periods).
[[nodiscard]] sim::HierarchyConfig hierarchy_config(const Scenario& scenario);

/// Everything one scenario execution produced.
struct ScenarioResult {
  Scenario scenario;              ///< as actually run (after any clamping)
  sim::AggregateMetrics aggregate;  ///< cross-replica summary
  std::vector<sim::RunMetrics> runs;  ///< per-replica metrics (replica mode)
  std::optional<sim::CampaignAggregate> campaign;  ///< campaign mode only

  /// Per-tier means, hierarchy scenarios only.  `runs`/`aggregate` carry
  /// the familiar flattened view (checkpoint_hours = Σ tier io).
  std::optional<sim::HierarchyAggregate> hierarchy;
};

/// Interface the runner uses to reuse previously computed results
/// (implemented by cache::ResultStore; DESIGN.md §5i).  Declared here so
/// spec never depends on the cache layer's key/serialization internals.
/// The contract is strict: a fetch hit must be bit-identical to what a
/// fresh run of the same scenario would produce — implementations that
/// cannot guarantee that must answer nullopt.
class ResultCache {
 public:
  virtual ~ResultCache() = default;

  /// A stored result for `scenario_as_run` (the scenario exactly as the
  /// runner will execute it, after any replica clamping), or nullopt.
  [[nodiscard]] virtual std::optional<ScenarioResult> fetch(
      const Scenario& scenario_as_run) = 0;

  /// Publish a freshly computed `result` (its embedded scenario is the
  /// scenario as run) for future fetches.
  virtual void store(const ScenarioResult& result) = 0;
};

/// Execution options applied uniformly to every scenario a runner sees.
struct RunnerOptions {
  /// Clamp scenario replica counts to this many (0 = run as specified).
  /// The CI catalog sweep uses it to smoke-run every scenario in seconds.
  std::size_t max_replicas = 0;

  /// Result cache consulted before and fed after every run (not owned;
  /// nullptr = always compute).  Keyed on the scenario as run, so a
  /// clamped smoke run and a full run never share an entry.
  ResultCache* cache = nullptr;
};

/// Executes scenarios.  Stateless apart from its options; safe to reuse
/// across scenarios and to share const across threads.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(RunnerOptions options = {}) : options_(options) {}

  /// Run `scenario` to completion.  Replica mode fills `runs` and
  /// `aggregate`; campaign mode fills `campaign` and leaves `runs` empty
  /// (per-allocation metrics live inside the campaign results).  Throws
  /// InvalidArgument on malformed specs.
  [[nodiscard]] ScenarioResult run(const Scenario& scenario) const;

  [[nodiscard]] const RunnerOptions& options() const noexcept {
    return options_;
  }

 private:
  RunnerOptions options_;
};

}  // namespace lazyckpt::spec
