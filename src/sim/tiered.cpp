#include "sim/tiered.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace lazyckpt::sim {

void TieredConfig::validate() const {
  require_positive(compute_hours, "TieredConfig.compute_hours");
  require_positive(alpha_oci_hours, "TieredConfig.alpha_oci_hours");
  require_positive(mtbf_hint_hours, "TieredConfig.mtbf_hint_hours");
  require(shape_hint > 0.0 && shape_hint <= 1.0,
          "TieredConfig.shape_hint must lie in (0, 1]");
  require_positive(beta_l1_hours, "TieredConfig.beta_l1_hours");
  require_positive(beta_l2_hours, "TieredConfig.beta_l2_hours");
  require_non_negative(gamma_l1_hours, "TieredConfig.gamma_l1_hours");
  require_non_negative(gamma_l2_hours, "TieredConfig.gamma_l2_hours");
  require(l2_every >= 1, "TieredConfig.l2_every must be >= 1");
  require(l1_survivable_fraction >= 0.0 && l1_survivable_fraction <= 1.0,
          "TieredConfig.l1_survivable_fraction must lie in [0, 1]");
  require(max_events >= 1, "TieredConfig.max_events must be >= 1");
}

TieredMetrics simulate_tiered(const TieredConfig& config,
                              core::CheckpointPolicy& policy,
                              FailureSource& failures, Rng severity_rng) {
  config.validate();

  TieredMetrics metrics;
  double now = 0.0;
  double committed_l1 = 0.0;  ///< work restorable from the burst buffer
  double committed_l2 = 0.0;  ///< work restorable from the PFS (<= L1)
  double uncommitted = 0.0;   ///< work since the last completed checkpoint
  double last_failure = 0.0;
  bool any_failure = false;
  int boundaries_since_failure = 0;
  std::uint64_t writes_since_l2 = 0;
  stats::MovingAverage mtbf_ma(16);

  const auto make_context = [&]() {
    core::PolicyContext ctx;
    ctx.now_hours = now;
    ctx.time_since_failure_hours = any_failure ? now - last_failure : now;
    ctx.alpha_oci_hours = config.alpha_oci_hours;
    ctx.checkpoint_time_hours = config.beta_l1_hours;
    ctx.mtbf_estimate_hours = mtbf_ma.value_or(config.mtbf_hint_hours);
    ctx.weibull_shape_estimate = config.shape_hint;
    ctx.checkpoints_since_failure = boundaries_since_failure;
    ctx.failures_so_far = static_cast<int>(metrics.failures);
    return ctx;
  };

  // Consume the pending failure: roll back (to L1 state if the failure is
  // L1-survivable, else to L2 state) and pay possibly repeated restarts.
  const auto handle_failure = [&]() {
    const double failure_time = failures.peek_next();
    metrics.wasted_hours += failure_time - now + uncommitted;
    uncommitted = 0.0;
    now = failure_time;

    const auto register_failure = [&]() -> double {
      mtbf_ma.add(any_failure ? now - last_failure : now);
      any_failure = true;
      last_failure = now;
      boundaries_since_failure = 0;
      ++metrics.failures;
      failures.pop();
      policy.on_failure(make_context());

      const bool l1_ok =
          severity_rng.uniform() < config.l1_survivable_fraction;
      if (l1_ok) {
        ++metrics.l1_restarts;
        return config.gamma_l1_hours;
      }
      // Node-local state lost: everything beyond the last L2 flush must
      // be recomputed.
      ++metrics.l2_restarts;
      metrics.wasted_hours += committed_l1 - committed_l2;
      committed_l1 = committed_l2;
      return config.gamma_l2_hours;
    };

    double gamma = register_failure();
    while (gamma > 0.0) {
      const double next = failures.peek_next();
      if (next < now + gamma) {
        metrics.wasted_hours += next - now;
        now = next;
        gamma = register_failure();
        continue;
      }
      now += gamma;
      metrics.restart_hours += gamma;
      break;
    }
  };

  std::uint64_t events = 0;
  const double work_target = config.compute_hours;
  while (committed_l1 + uncommitted < work_target) {
    require(++events <= config.max_events,
            "tiered simulation exceeded max_events");

    double alpha = policy.next_interval(make_context());
    require(std::isfinite(alpha) && alpha > 0.0,
            "policy returned a non-positive interval");

    // --- compute phase -------------------------------------------------
    const double remaining = work_target - committed_l1 - uncommitted;
    const double chunk = std::min(alpha, remaining);
    if (failures.peek_next() < now + chunk) {
      handle_failure();
      continue;
    }
    now += chunk;
    uncommitted += chunk;
    if (committed_l1 + uncommitted >= work_target) break;

    // --- checkpoint boundary -------------------------------------------
    ++boundaries_since_failure;
    if (policy.should_skip(make_context())) {
      ++metrics.checkpoints_skipped;
      continue;
    }

    // L1 write.
    if (failures.peek_next() < now + config.beta_l1_hours) {
      handle_failure();  // torn L1 write: segment lost with it
      continue;
    }
    now += config.beta_l1_hours;
    metrics.l1_io_hours += config.beta_l1_hours;
    committed_l1 += uncommitted;
    uncommitted = 0.0;
    ++metrics.l1_checkpoints;
    ++writes_since_l2;
    policy.on_checkpoint_complete(make_context());

    // Periodic L2 flush of the checkpoint just taken.
    if (writes_since_l2 >= static_cast<std::uint64_t>(config.l2_every)) {
      if (failures.peek_next() < now + config.beta_l2_hours) {
        handle_failure();  // torn L2 flush: L1 state remains valid
        continue;
      }
      now += config.beta_l2_hours;
      metrics.l2_io_hours += config.beta_l2_hours;
      committed_l2 = committed_l1;
      ++metrics.l2_checkpoints;
      writes_since_l2 = 0;
    }
  }

  committed_l1 += uncommitted;
  metrics.makespan_hours = now;
  metrics.compute_hours = committed_l1;

  const double attributed = metrics.compute_hours + metrics.l1_io_hours +
                            metrics.l2_io_hours + metrics.wasted_hours +
                            metrics.restart_hours;
  require(std::abs(attributed - metrics.makespan_hours) <=
              1e-6 * std::max(1.0, metrics.makespan_hours),
          "internal error: tiered time attribution does not balance");
  return metrics;
}

}  // namespace lazyckpt::sim
