#include "sim/tiered.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "io/hierarchy.hpp"
#include "io/storage_model.hpp"
#include "sim/hierarchy.hpp"

namespace lazyckpt::sim {

void TieredConfig::validate() const {
  require_positive(compute_hours, "TieredConfig.compute_hours");
  require_positive(alpha_oci_hours, "TieredConfig.alpha_oci_hours");
  require_positive(mtbf_hint_hours, "TieredConfig.mtbf_hint_hours");
  require(shape_hint > 0.0 && shape_hint <= 1.0,
          "TieredConfig.shape_hint must lie in (0, 1]");
  require_positive(beta_l1_hours, "TieredConfig.beta_l1_hours");
  require_positive(beta_l2_hours, "TieredConfig.beta_l2_hours");
  require_non_negative(gamma_l1_hours, "TieredConfig.gamma_l1_hours");
  require_non_negative(gamma_l2_hours, "TieredConfig.gamma_l2_hours");
  require(l2_every >= 1, "TieredConfig.l2_every must be >= 1");
  require(l1_survivable_fraction >= 0.0 && l1_survivable_fraction <= 1.0,
          "TieredConfig.l1_survivable_fraction must lie in [0, 1]");
  require(max_events >= 1, "TieredConfig.max_events must be >= 1");
}

// Compatibility shim: the two-level scheme is exactly a two-tier
// StorageHierarchy (burst buffer over PFS), so this maps the legacy
// config onto sim::simulate_hierarchy and the metrics back.  The golden
// suite in tests/test_sim_hierarchy.cpp pins this mapping to the numbers
// the original two-level event loop produced, bit for bit.
TieredMetrics simulate_tiered(const TieredConfig& config,
                              core::CheckpointPolicy& policy,
                              FailureSource& failures, Rng severity_rng) {
  config.validate();

  std::vector<io::StorageTier> tiers(2);
  tiers[0].kind = "bb";
  tiers[0].model = std::make_unique<io::ConstantStorage>(
      config.beta_l1_hours, config.gamma_l1_hours);
  tiers[0].survivable_fraction = config.l1_survivable_fraction;
  tiers[0].every = 1;
  tiers[1].kind = "pfs";
  tiers[1].model = std::make_unique<io::ConstantStorage>(
      config.beta_l2_hours, config.gamma_l2_hours);
  tiers[1].survivable_fraction = 1.0;
  tiers[1].every = config.l2_every;
  const io::StorageHierarchy hierarchy(std::move(tiers));

  HierarchyConfig hierarchy_config;
  hierarchy_config.compute_hours = config.compute_hours;
  hierarchy_config.alpha_oci_hours = config.alpha_oci_hours;
  hierarchy_config.mtbf_hint_hours = config.mtbf_hint_hours;
  hierarchy_config.shape_hint = config.shape_hint;
  hierarchy_config.max_events = config.max_events;

  const HierarchyRunMetrics run = simulate_hierarchy(
      hierarchy_config, hierarchy, policy, failures, severity_rng);

  TieredMetrics metrics;
  metrics.makespan_hours = run.makespan_hours;
  metrics.compute_hours = run.compute_hours;
  metrics.l1_io_hours = run.tiers[0].io_hours;
  metrics.l2_io_hours = run.tiers[1].io_hours;
  metrics.wasted_hours = run.wasted_hours;
  metrics.restart_hours = run.restart_hours;
  metrics.failures = run.failures;
  metrics.l1_checkpoints = run.tiers[0].checkpoints;
  metrics.l2_checkpoints = run.tiers[1].checkpoints;
  metrics.checkpoints_skipped = run.checkpoints_skipped;
  metrics.l1_restarts = run.tiers[0].restarts;
  metrics.l2_restarts = run.tiers[1].restarts;
  return metrics;
}

}  // namespace lazyckpt::sim
