#include "sim/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lazyckpt::sim {

AggregateMetrics aggregate(std::span<const RunMetrics> runs) {
  require(!runs.empty(), "aggregate needs at least one run");
  AggregateMetrics agg;
  agg.replicas = runs.size();
  agg.min_makespan_hours = runs.front().makespan_hours;
  agg.max_makespan_hours = runs.front().makespan_hours;
  agg.min_checkpoint_hours = runs.front().checkpoint_hours;
  agg.max_checkpoint_hours = runs.front().checkpoint_hours;

  for (const auto& run : runs) {
    agg.mean_makespan_hours += run.makespan_hours;
    agg.mean_compute_hours += run.compute_hours;
    agg.mean_checkpoint_hours += run.checkpoint_hours;
    agg.mean_wasted_hours += run.wasted_hours;
    agg.mean_restart_hours += run.restart_hours;
    agg.mean_failures += static_cast<double>(run.failures);
    agg.mean_checkpoints_written +=
        static_cast<double>(run.checkpoints_written);
    agg.mean_checkpoints_skipped +=
        static_cast<double>(run.checkpoints_skipped);
    agg.mean_data_written_gb += run.data_written_gb;
    agg.min_makespan_hours =
        std::min(agg.min_makespan_hours, run.makespan_hours);
    agg.max_makespan_hours =
        std::max(agg.max_makespan_hours, run.makespan_hours);
    agg.min_checkpoint_hours =
        std::min(agg.min_checkpoint_hours, run.checkpoint_hours);
    agg.max_checkpoint_hours =
        std::max(agg.max_checkpoint_hours, run.checkpoint_hours);
  }
  const auto n = static_cast<double>(runs.size());
  agg.mean_makespan_hours /= n;
  agg.mean_compute_hours /= n;
  agg.mean_checkpoint_hours /= n;
  agg.mean_wasted_hours /= n;
  agg.mean_restart_hours /= n;
  agg.mean_failures /= n;
  agg.mean_checkpoints_written /= n;
  agg.mean_checkpoints_skipped /= n;
  agg.mean_data_written_gb /= n;
  return agg;
}

}  // namespace lazyckpt::sim
