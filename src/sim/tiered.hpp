#pragma once

/// \file tiered.hpp
/// \brief Two-level (burst-buffer + parallel-filesystem) checkpoint
/// simulation — an extension beyond the paper's single-level model.
///
/// The paper's Observation 7 argues iLazy gets *more* attractive on
/// SSD-class storage.  Production SSD deployments are burst buffers in a
/// two-level scheme (SCR/VeloC style): every checkpoint lands on the fast
/// local tier (L1), and every `l2_every`-th is also flushed to the slow
/// global tier (L2).  Node-local L1 state does not survive all failures:
/// a fraction of failures (process crashes, software) can restart from L1,
/// the rest (node loss) must fall back to the older L2 checkpoint, losing
/// extra work.
///
/// Since the N-tier generalization landed (sim/hierarchy.hpp, DESIGN.md
/// §5k) this module is a compatibility shim: simulate_tiered maps the
/// two-level config onto a two-tier io::StorageHierarchy and runs
/// sim::simulate_hierarchy, reproducing the original two-level event loop
/// bit-identically (pinned by tests/test_sim_hierarchy.cpp goldens).

#include <cstdint>

#include "common/random.hpp"
#include "core/policy/policy.hpp"
#include "sim/failure_source.hpp"

namespace lazyckpt::sim {

/// Configuration of a two-level run.  Times in hours.
struct TieredConfig {
  double compute_hours = 0.0;     ///< useful work to finish
  double alpha_oci_hours = 0.0;   ///< reference OCI handed to the policy
  double mtbf_hint_hours = 0.0;   ///< MTBF estimate for the policy context
  double shape_hint = 1.0;        ///< Weibull shape estimate

  double beta_l1_hours = 0.0;     ///< write one checkpoint to L1
  double beta_l2_hours = 0.0;     ///< additionally flush it to L2
  double gamma_l1_hours = 0.0;    ///< restart from L1 (may be 0)
  double gamma_l2_hours = 0.0;    ///< restart from L2
  int l2_every = 1;               ///< every Nth written checkpoint hits L2

  /// Fraction of failures recoverable from the node-local L1 tier.
  double l1_survivable_fraction = 0.8;

  std::uint64_t max_events = 50'000'000;  ///< livelock guard

  /// Throws InvalidArgument on invalid values.
  void validate() const;
};

/// Accounting for one two-level run.  Conservation holds:
/// makespan == compute + l1_io + l2_io + wasted + restart.
struct TieredMetrics {
  double makespan_hours = 0.0;
  double compute_hours = 0.0;
  double l1_io_hours = 0.0;
  double l2_io_hours = 0.0;
  double wasted_hours = 0.0;
  double restart_hours = 0.0;

  std::uint64_t failures = 0;
  std::uint64_t l1_checkpoints = 0;  ///< checkpoints written (all hit L1)
  std::uint64_t l2_checkpoints = 0;  ///< subset also flushed to L2
  std::uint64_t checkpoints_skipped = 0;
  std::uint64_t l1_restarts = 0;
  std::uint64_t l2_restarts = 0;

  [[nodiscard]] double io_hours() const noexcept {
    return l1_io_hours + l2_io_hours;
  }
};

/// Run one two-level simulation.  `severity_rng` decides per failure
/// whether L1 survives.  Throws Error when max_events is exceeded.
TieredMetrics simulate_tiered(const TieredConfig& config,
                              core::CheckpointPolicy& policy,
                              FailureSource& failures, Rng severity_rng);

}  // namespace lazyckpt::sim
