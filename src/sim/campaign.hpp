#pragma once

/// \file campaign.hpp
/// \brief Multi-allocation campaigns: how real leadership jobs actually
/// finish.  A 360-hour CHIMERA run does not get one contiguous allocation;
/// it runs as a chain of fixed-size allocations, each resuming from the
/// last committed checkpoint of the previous one, with queue-wait gaps in
/// between during which the machine keeps failing.

#include <cstddef>
#include <vector>

#include "core/policy/policy.hpp"
#include "io/storage_model.hpp"
#include "sim/engine.hpp"
#include "sim/failure_source.hpp"

namespace lazyckpt::sim {

/// Configuration of a campaign.
struct CampaignConfig {
  SimulationConfig base;          ///< per-allocation engine settings; its
                                  ///< time_budget_hours is overridden
  double allocation_hours = 0.0;  ///< size of each allocation
  double gap_hours = 0.0;         ///< queue wait between allocations
  std::size_t max_allocations = 100;  ///< give up after this many

  /// Throws InvalidArgument on invalid values.
  void validate() const;
};

/// Outcome of a campaign.
struct CampaignResult {
  bool completed = false;            ///< all work committed
  std::size_t allocations_used = 0;  ///< including the final partial one
  double committed_hours = 0.0;      ///< total committed work
  double machine_hours = 0.0;        ///< allocation time consumed (the bill)
  std::vector<RunMetrics> runs;      ///< per-allocation metrics
};

/// Run a campaign: repeat fixed-budget allocations, carrying committed
/// work forward, until the workload completes or max_allocations is hit.
/// The failure stream is continuous across allocations and gaps (the
/// machine does not stop failing while the job queues).
CampaignResult run_campaign(const CampaignConfig& config,
                            core::CheckpointPolicy& policy,
                            FailureSource& failures,
                            const io::StorageModel& storage);

}  // namespace lazyckpt::sim
