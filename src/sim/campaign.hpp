#pragma once

/// \file campaign.hpp
/// \brief Multi-allocation campaigns: how real leadership jobs actually
/// finish.  A 360-hour CHIMERA run does not get one contiguous allocation;
/// it runs as a chain of fixed-size allocations, each resuming from the
/// last committed checkpoint of the previous one, with queue-wait gaps in
/// between during which the machine keeps failing.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/policy/policy.hpp"
#include "io/storage_model.hpp"
#include "sim/engine.hpp"
#include "sim/failure_source.hpp"
#include "sim/metrics.hpp"
#include "stats/distribution.hpp"

namespace lazyckpt::sim {

/// Configuration of a campaign.
struct CampaignConfig {
  SimulationConfig base;          ///< per-allocation engine settings; its
                                  ///< time_budget_hours is overridden
  double allocation_hours = 0.0;  ///< size of each allocation
  double gap_hours = 0.0;         ///< queue wait between allocations
  std::size_t max_allocations = 100;  ///< give up after this many

  /// Throws InvalidArgument on invalid values.
  void validate() const;
};

/// Outcome of a campaign.
struct CampaignResult {
  bool completed = false;            ///< all work committed
  std::size_t allocations_used = 0;  ///< including the final partial one
  double committed_hours = 0.0;      ///< total committed work
  double machine_hours = 0.0;        ///< allocation time consumed (the bill)
  std::vector<RunMetrics> runs;      ///< per-allocation metrics
};

/// Run a campaign: repeat fixed-budget allocations, carrying committed
/// work forward, until the workload completes or max_allocations is hit.
/// The failure stream is continuous across allocations and gaps (the
/// machine does not stop failing while the job queues).
CampaignResult run_campaign(const CampaignConfig& config,
                            core::CheckpointPolicy& policy,
                            FailureSource& failures,
                            const io::StorageModel& storage);

/// Run `replicas` independent Monte Carlo campaigns of `policy` under
/// renewal failures drawn from `inter_arrival`.  Each replica gets a
/// cloned policy and an independent RNG stream derived from `seed`, in
/// index order, exactly like sim::run_replicas_raw — so the result is
/// bit-identical for any LAZYCKPT_THREADS value and two policies evaluated
/// with the same seed face the same failure arrival times.  This is the
/// shared code path the campaign benches used to hand-roll.
std::vector<CampaignResult> run_campaign_replicas(
    const CampaignConfig& config, const core::CheckpointPolicy& policy,
    const stats::Distribution& inter_arrival, const io::StorageModel& storage,
    std::size_t replicas, std::uint64_t seed);

/// Cross-replica summary of a campaign experiment.
struct CampaignAggregate {
  std::size_t replicas = 0;
  double mean_allocations = 0.0;      ///< allocations used per campaign
  double mean_machine_hours = 0.0;    ///< billed hours per campaign
  double mean_committed_hours = 0.0;  ///< committed science per campaign
  double mean_checkpoint_hours = 0.0;  ///< checkpoint I/O per campaign
  double completion_rate = 0.0;        ///< fraction of campaigns completed
};

/// Aggregate a non-empty set of campaign results.
CampaignAggregate aggregate_campaigns(std::span<const CampaignResult> results);

}  // namespace lazyckpt::sim
