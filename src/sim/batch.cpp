#include "sim/batch.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/policy/ilazy.hpp"
#include "core/policy/periodic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/batch_simd.hpp"
#include "sim/failure_source.hpp"
#include "stats/exact_pow.hpp"
#include "stats/sampler.hpp"

namespace lazyckpt::sim {

namespace {

/// Failure arrivals prefetched per replica through Sampler::sample_n.
/// Two full AVX-512 pow batches per refill on the Weibull path; the
/// queue lives in the replica's cold state so a refill is one batched
/// transform plus a running-sum accumulation in draw order.
constexpr std::size_t kFailurePrefetch = 16;

/// Same counter names as the scalar engine (sim/engine.cpp) so batched
/// and scalar sweeps aggregate into the same totals, plus the batch
/// dispatch counter.  Flushed once per batch after the rounds complete —
/// the rounds themselves never touch observability state.
struct BatchMetrics {
  obs::Counter& trials = obs::metrics().counter("sim.trials");
  obs::Counter& events = obs::metrics().counter("sim.events");
  obs::Counter& failures = obs::metrics().counter("sim.failures");
  obs::Counter& ckpt_written =
      obs::metrics().counter("sim.checkpoints_written");
  obs::Counter& ckpt_skipped =
      obs::metrics().counter("sim.checkpoints_skipped");
  obs::Counter& dispatch_batch = obs::metrics().counter("sim.dispatch.batch");

  static BatchMetrics& get() {
    static BatchMetrics instance;
    return instance;
  }
};

/// How phase 1 produces the next checkpoint interval for every live
/// replica.  The three eligible policies need exactly two shapes:
/// a run-constant interval (periodic, static OCI) or the iLazy stretch,
/// whose pow runs batched.
enum class AlphaMode { kConstant, kILazy };

struct TimelineArenaPoint {
  std::uint32_t replica;
  TimelinePoint point;
};

/// One batch of replicas in lockstep.  Phase 2's step() is a statement-
/// for-statement transcription of one run_loop iteration (sim/engine.cpp)
/// — same comparisons, same order, same error messages.  What it omits is
/// exactly the work run_loop does whose results the eligible
/// configuration can never observe: PolicyContext refreshes (the three
/// policies read only alpha/time-since-failure/shape, all available in
/// SoA form), the MTBF moving average (feeds only the context field), the
/// boundary counter (same), and the no-op policy hooks.  Omitting
/// unobservable work cannot change a byte of RunMetrics; the golden tests
/// hold the proof.
///
/// Replica state is dense: slot s of every array belongs to replica
/// slot_replica_[s], and slots of finished replicas are compacted out so
/// the phase-1 scan and the round loop always touch contiguous memory.
/// Only the failure path's cold state (RNG, arrival queue, failure-side
/// accumulators) stays indexed by replica.
class BatchKernel {
 public:
  BatchKernel(const SimulationConfig& config, AlphaMode mode,
              double constant_alpha, double ilazy_shape,
              const stats::Sampler& sampler, const io::ConstantStorage& storage,
              std::span<Rng> streams, std::span<RunMetrics> out)
      : config_(config),
        mode_(mode),
        constant_alpha_(constant_alpha),
        pow_exponent_(1.0 - ilazy_shape),
        sampler_(sampler),
        work_target_(config.compute_hours),
        budget_(config.time_budget_hours > 0.0
                    ? config.time_budget_hours
                    : std::numeric_limits<double>::infinity()),
        beta_(storage.checkpoint_time(0.0)),
        gamma_(storage.restart_time(0.0)),
        size_gb_(storage.checkpoint_size_gb()),
        blocking_(beta_ * config.checkpoint_blocking_fraction),
        sync_(config.checkpoint_blocking_fraction >= 1.0),
        out_(out) {
    const std::size_t n = streams.size();
    count_ = n;
    now_.assign(n, 0.0);
    committed_.assign(n, 0.0);
    uncommitted_.assign(n, 0.0);
    last_failure_.assign(n, 0.0);
    next_failure_.assign(n, 0.0);
    pending_commit_time_.assign(n, 0.0);
    pending_work_.assign(n, 0.0);
    ratio_.assign(n, 0.0);
    ckpt_hours_.assign(n, 0.0);
    data_gb_.assign(n, 0.0);
    events_.assign(n, 0);
    written_.assign(n, 0);
    has_pending_.assign(n, 0);
    slot_replica_.resize(n);
    cold_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      cold_.push_back(ReplicaCold{streams[i]});
      refill_arrivals(cold_.back());
      next_failure_[i] = cold_.back().arrivals[0];
      slot_replica_[i] = static_cast<std::uint32_t>(i);
    }
    if (config_.record_timeline) {
      const double boundaries = work_target_ / config_.alpha_oci_hours;
      const double expected_failures = work_target_ / config_.mtbf_hint_hours;
      arena_.reserve(
          (static_cast<std::size_t>(
               std::min(boundaries + expected_failures, 1e6)) +
           16) *
          n);
    }
    if (mode_ == AlphaMode::kConstant) {
      // Run-constant interval: the scalar loop re-checks it every event;
      // one check up front decides identically (it either always passes
      // or throws on every replica's first event).
      require(std::isfinite(constant_alpha_) && constant_alpha_ > 0.0,
              "policy returned a non-positive checkpoint interval");
    }
  }

  void run() {
    // Monomorphize the rounds on (alpha mode, synchronous checkpoints):
    // the synchronous case — blocking fraction 1.0, every write commits
    // at the boundary — drops the whole in-flight-pending bookkeeping
    // from the per-event path, and the mode split removes the per-event
    // policy-kind branch.  The synchronous timeline-off case further
    // upgrades to the AVX-512 round pass where the CPU supports it: pure
    // boundary events advance eight lanes at a time, with the scalar
    // step as the per-lane fallback (batch_simd.hpp has the exactness
    // argument).  The finite-beta gate keeps the scalar path's throw
    // timing for degenerate storage.
    const bool vector_ok = sync_ && !config_.record_timeline &&
                           std::isfinite(beta_) && beta_ > 0.0 &&
                           detail::batch_round_avx512_supported();
    if (mode_ == AlphaMode::kILazy) {
      if (vector_ok) {
        run_rounds_vector<AlphaMode::kILazy>();
      } else if (sync_) {
        run_rounds<AlphaMode::kILazy, true>();
      } else {
        run_rounds<AlphaMode::kILazy, false>();
      }
    } else {
      if (vector_ok) {
        run_rounds_vector<AlphaMode::kConstant>();
      } else if (sync_) {
        run_rounds<AlphaMode::kConstant, true>();
      } else {
        run_rounds<AlphaMode::kConstant, false>();
      }
    }
    scatter_timelines();
    flush_observability();
  }

 private:
  template <AlphaMode kMode, bool kSync>
  void run_rounds() {
    while (count_ > 0) {
      if constexpr (kMode == AlphaMode::kILazy) compute_ilazy_alphas();
      std::size_t write = 0;
      const std::size_t count = count_;
      for (std::size_t s = 0; s < count; ++s) {
        // iLazy finishes Eq. 11 right here — α·(ratio^(1−k)) with the
        // batched pow already applied to ratio_ — instead of a separate
        // scatter pass over an alpha array.
        const double alpha = kMode == AlphaMode::kILazy
                                 ? config_.alpha_oci_hours * ratio_[s]
                                 : constant_alpha_;
        if (step<kMode, kSync>(s, alpha)) {
          if (write != s) move_slot(s, write);
          ++write;
        } else {
          finalize(s);
        }
      }
      count_ = write;
    }
  }

  /// Vectorized rounds for the synchronous timeline-off case: phase 1 as
  /// usual, then one AVX-512 pass per round with the scalar step bound
  /// in as the impure-lane fallback; dead slots are finalized and
  /// compacted between rounds so the arrays stay dense.
  template <AlphaMode kMode>
  void run_rounds_vector() {
    while (count_ > 0) {
      if constexpr (kMode == AlphaMode::kILazy) compute_ilazy_alphas();
      dead_.clear();
      detail::batch_round_avx512(lanes(), count_, this, &step_thunk<kMode>,
                                 dead_);
      if (!dead_.empty()) {
        for (const std::uint32_t s : dead_) finalize(s);
        compact_dead();
      }
    }
  }

  template <AlphaMode kMode>
  static bool step_thunk(void* kernel, std::size_t slot) {
    auto* self = static_cast<BatchKernel*>(kernel);
    // Recomputes the lane's alpha with the identical multiply the vector
    // pass performed — IEEE multiplication is deterministic, so the
    // scalar step sees the same value bit for bit.
    const double alpha = kMode == AlphaMode::kILazy
                             ? self->config_.alpha_oci_hours *
                                   self->ratio_[slot]
                             : self->constant_alpha_;
    return self->step<kMode, true>(slot, alpha);
  }

  [[nodiscard]] detail::BatchLanes lanes() {
    return detail::BatchLanes{now_.data(),
                              committed_.data(),
                              uncommitted_.data(),
                              next_failure_.data(),
                              ratio_.data(),
                              ckpt_hours_.data(),
                              data_gb_.data(),
                              events_.data(),
                              written_.data(),
                              config_.alpha_oci_hours,
                              constant_alpha_,
                              mode_ == AlphaMode::kILazy,
                              work_target_,
                              budget_,
                              blocking_,
                              size_gb_,
                              config_.max_events};
  }

  /// Copy every per-slot array entry from slot `from` to slot `to`
  /// (to < from).  ratio_ is excluded: it is recomputed from the dense
  /// arrays at the top of every round.
  void move_slot(std::size_t from, std::size_t to) {
    now_[to] = now_[from];
    committed_[to] = committed_[from];
    uncommitted_[to] = uncommitted_[from];
    last_failure_[to] = last_failure_[from];
    next_failure_[to] = next_failure_[from];
    pending_commit_time_[to] = pending_commit_time_[from];
    pending_work_[to] = pending_work_[from];
    ckpt_hours_[to] = ckpt_hours_[from];
    data_gb_[to] = data_gb_[from];
    events_[to] = events_[from];
    written_[to] = written_[from];
    has_pending_[to] = has_pending_[from];
    slot_replica_[to] = slot_replica_[from];
  }

  /// Stable removal of this round's dead slots (ascending in dead_).
  void compact_dead() {
    std::size_t write = dead_.front();
    std::size_t next_dead = 0;
    for (std::size_t s = dead_.front(); s < count_; ++s) {
      if (next_dead < dead_.size() && dead_[next_dead] == s) {
        ++next_dead;
        continue;
      }
      move_slot(s, write++);
    }
    count_ = write;
  }

  struct ReplicaCold {
    explicit ReplicaCold(const Rng& stream) : rng(stream) {}

    Rng rng;
    std::array<double, kFailurePrefetch> arrivals{};
    std::size_t arrival_pos = 0;
    double last_arrival = 0.0;  ///< running sum of inter-arrival draws
    double wasted_hours = 0.0;
    double restart_hours = 0.0;
    std::uint64_t failures = 0;
    bool truncated = false;
  };

  /// Prefetch the next kFailurePrefetch absolute failure times.  The
  /// draws come out of sample_n in the exact order repeated pop() calls
  /// would draw them, and the running sum accumulates them in that same
  /// order — so every arrival is bitwise the value the scalar
  /// RenewalFailureSource would have produced.
  void refill_arrivals(ReplicaCold& r) {
    sampler_.sample_n(r.rng, draws_);
    double base = r.last_arrival;
    for (std::size_t k = 0; k < kFailurePrefetch; ++k) {
      base += draws_[k];
      r.arrivals[k] = base;
    }
    r.last_arrival = base;
    r.arrival_pos = 0;
  }

  void pop_failure(std::size_t s) {
    ReplicaCold& r = cold_[slot_replica_[s]];
    if (++r.arrival_pos == kFailurePrefetch) refill_arrivals(r);
    next_failure_[s] = r.arrivals[r.arrival_pos];
  }

  /// Phase 1: α_lazy(t) = α·(max(t, α)/α)^(1−k) for every live replica,
  /// the pow batched through the bit-exact pow_n.  Division, max, and
  /// the final multiply use the same operands as ILazyPolicy's
  /// lazy_interval, and pow_n is bitwise std::pow — so the result is the
  /// value the scalar policy call would have returned.  The scalar
  /// engine's tsf branch (`any_failure ? now - last_failure : now`) is
  /// elided: last_failure stays 0.0 until the first failure, and
  /// `now - 0.0` is bitwise `now`, so the subtraction alone is exact —
  /// and with dense slots the fill is a branchless contiguous
  /// sub/max/div sweep.
  void compute_ilazy_alphas() {
    const double alpha_oci = config_.alpha_oci_hours;
    const std::size_t count = count_;
    if (wide_fill_) {
      detail::batch_ratio_fill_avx512(now_.data(), last_failure_.data(),
                                      ratio_.data(), count, alpha_oci);
    } else {
      for (std::size_t s = 0; s < count; ++s) {
        const double tsf = now_[s] - last_failure_[s];
        ratio_[s] = std::max(tsf, alpha_oci) / alpha_oci;
      }
    }
    stats::pow_n(ratio_.data(), ratio_.data(), count, pow_exponent_);
  }

  void snapshot(std::size_t s) {
    if (!config_.record_timeline) return;
    const ReplicaCold& r = cold_[slot_replica_[s]];
    arena_.push_back({slot_replica_[s],
                      {now_[s], committed_[s], ckpt_hours_[s], r.wasted_hours,
                       r.restart_hours}});
  }

  void truncate_at_budget(std::size_t s) {
    ReplicaCold& r = cold_[slot_replica_[s]];
    r.wasted_hours += budget_ - now_[s] + uncommitted_[s];
    uncommitted_[s] = 0.0;
    now_[s] = budget_;
    has_pending_[s] = 0;
    r.truncated = true;
  }

  void commit_pending(std::size_t s) {
    committed_[s] += pending_work_[s];
    uncommitted_[s] -= pending_work_[s];
    has_pending_[s] = 0;
    ++written_[s];
    data_gb_[s] += size_gb_;
    snapshot(s);
  }

  /// Synchronous runs never carry a pending write across events, so the
  /// drain check compiles away entirely.
  template <bool kSync>
  void process_commit_before(std::size_t s, double limit) {
    if constexpr (kSync) return;
    if (has_pending_[s] != 0 && pending_commit_time_[s] <= limit &&
        pending_commit_time_[s] <= next_failure_[s]) {
      commit_pending(s);
    }
  }

  void register_failure(std::size_t s) {
    last_failure_[s] = now_[s];
    ++cold_[slot_replica_[s]].failures;
    pop_failure(s);
  }

  template <bool kSync>
  void handle_failure(std::size_t s) {
    ReplicaCold& r = cold_[slot_replica_[s]];
    const double failure_time = next_failure_[s];
    process_commit_before<kSync>(s, failure_time);
    if constexpr (!kSync) has_pending_[s] = 0;
    r.wasted_hours += failure_time - now_[s] + uncommitted_[s];
    uncommitted_[s] = 0.0;
    now_[s] = failure_time;
    register_failure(s);

    while (true) {
      if (gamma_ <= 0.0) break;
      const double next = next_failure_[s];
      if (next < now_[s] + gamma_ && next < budget_) {
        r.wasted_hours += next - now_[s];
        now_[s] = next;
        register_failure(s);
        continue;
      }
      if (now_[s] + gamma_ > budget_) {
        truncate_at_budget(s);
        break;
      }
      now_[s] += gamma_;
      r.restart_hours += gamma_;
      break;
    }
    snapshot(s);
  }

  /// One run_loop iteration for the replica in slot s.  Returns whether
  /// the run is still live — false on truncation or once the work target
  /// is met, folding the scalar while-condition's re-check into the step
  /// itself (after a boundary the committed+uncommitted sum is unchanged
  /// from the mid-step completion check, so the tail needs no re-test).
  template <AlphaMode kMode, bool kSync>
  bool step(std::size_t s, double alpha) {
    require(++events_[s] <= config_.max_events,
            "simulation exceeded max_events: the machine cannot make "
            "progress under this configuration");
    if constexpr (kMode == AlphaMode::kILazy) {
      require(std::isfinite(alpha) && alpha > 0.0,
              "policy returned a non-positive checkpoint interval");
    }

    // --- compute phase -------------------------------------------------
    const double remaining = work_target_ - committed_[s] - uncommitted_[s];
    const double chunk = std::min(alpha, remaining);
    const double limit = std::min(now_[s] + chunk, budget_);
    process_commit_before<kSync>(s, limit);
    if (next_failure_[s] < limit) {
      handle_failure<kSync>(s);
      return !cold_[slot_replica_[s]].truncated &&
             committed_[s] + uncommitted_[s] < work_target_;
    }
    if (now_[s] + chunk > budget_) {
      truncate_at_budget(s);
      return false;
    }
    now_[s] += chunk;
    uncommitted_[s] += chunk;

    if (committed_[s] + uncommitted_[s] >= work_target_) {
      return false;  // final segment needs no checkpoint
    }

    // --- checkpoint boundary -------------------------------------------
    // (The eligible policies never skip, so there is no skip branch.)
    if constexpr (!kSync) {
      if (has_pending_[s] != 0) {
        if (next_failure_[s] < std::min(pending_commit_time_[s], budget_)) {
          handle_failure<kSync>(s);
          return !cold_[slot_replica_[s]].truncated &&
                 committed_[s] + uncommitted_[s] < work_target_;
        }
        if (pending_commit_time_[s] > budget_) {
          truncate_at_budget(s);
          return false;
        }
        ckpt_hours_[s] += pending_commit_time_[s] - now_[s];
        now_[s] = pending_commit_time_[s];
        commit_pending(s);
      }
    }

    require(std::isfinite(beta_) && beta_ > 0.0,
            "storage model returned a non-positive checkpoint time");
    if (next_failure_[s] < std::min(now_[s] + blocking_, budget_)) {
      handle_failure<kSync>(s);  // partial checkpoint discarded with the work
      return !cold_[slot_replica_[s]].truncated &&
             committed_[s] + uncommitted_[s] < work_target_;
    }
    if (now_[s] + blocking_ > budget_) {
      truncate_at_budget(s);
      return false;
    }
    const double covered = uncommitted_[s];  // work this write protects
    now_[s] += blocking_;
    ckpt_hours_[s] += blocking_;
    if constexpr (kSync) {
      // Inline commit: pending_work == covered == uncommitted, so the
      // scalar's set-pending-then-commit collapses to these exact stores
      // (x - x is bitwise +0, matching the scalar's drain to zero).
      committed_[s] += covered;
      uncommitted_[s] -= covered;
      ++written_[s];
      data_gb_[s] += size_gb_;
      snapshot(s);
    } else {
      has_pending_[s] = 1;
      pending_work_[s] = covered;
      pending_commit_time_[s] = now_[s] + (beta_ - blocking_);
    }
    return true;
  }

  void finalize(std::size_t s) {
    const std::uint32_t replica = slot_replica_[s];
    ReplicaCold& r = cold_[replica];
    if (!r.truncated) {
      committed_[s] += uncommitted_[s];
      uncommitted_[s] = 0.0;
    }
    RunMetrics m;
    m.makespan_hours = now_[s];
    m.compute_hours = committed_[s];
    m.checkpoint_hours = ckpt_hours_[s];
    m.wasted_hours = r.wasted_hours;
    m.restart_hours = r.restart_hours;
    m.failures = r.failures;
    m.checkpoints_written = written_[s];
    m.data_written_gb = data_gb_[s];
    snapshot(s);

    const double attributed = m.compute_hours + m.checkpoint_hours +
                              m.wasted_hours + m.restart_hours;
    require(std::abs(attributed - m.makespan_hours) <=
                1e-6 * std::max(1.0, m.makespan_hours),
            "internal error: time attribution does not balance");
    total_events_ += events_[s];
    total_failures_ += r.failures;
    total_written_ += written_[s];
    out_[replica] = std::move(m);
  }

  /// The arena holds (replica, point) in emission order; per replica that
  /// order is exactly the scalar snapshot order, so a stable scatter
  /// reproduces each timeline element-for-element.
  void scatter_timelines() {
    if (!config_.record_timeline) return;
    std::vector<std::size_t> counts(out_.size(), 0);
    for (const TimelineArenaPoint& p : arena_) ++counts[p.replica];
    for (std::size_t i = 0; i < out_.size(); ++i) {
      out_[i].timeline.reserve(counts[i]);
    }
    for (const TimelineArenaPoint& p : arena_) {
      out_[p.replica].timeline.push_back(p.point);
    }
  }

  void flush_observability() {
    if (!obs::enabled()) return;
    BatchMetrics& bm = BatchMetrics::get();
    bm.trials.add(out_.size());
    bm.events.add(total_events_);
    bm.failures.add(total_failures_);
    bm.ckpt_written.add(total_written_);
    bm.dispatch_batch.add(out_.size());
  }

  const SimulationConfig& config_;
  AlphaMode mode_;
  double constant_alpha_;
  double pow_exponent_;  ///< 1 - k, the iLazy stretch exponent
  stats::Sampler sampler_;

  const double work_target_;
  const double budget_;
  const double beta_;
  const double gamma_;
  const double size_gb_;
  const double blocking_;
  const bool sync_;
  /// Eight-wide phase-1 fill (bitwise the scalar loop) where supported.
  const bool wide_fill_ = detail::batch_round_avx512_supported();

  // Dense structure-of-arrays replica state, indexed by slot; slots at or
  // past count_ are retired.  Everything phase 1 scans and the fields
  // phase 2 touches on every step.
  std::size_t count_ = 0;
  std::vector<double> now_;
  std::vector<double> committed_;
  std::vector<double> uncommitted_;
  std::vector<double> last_failure_;
  std::vector<double> next_failure_;
  std::vector<double> pending_commit_time_;
  std::vector<double> pending_work_;
  std::vector<double> ratio_;  ///< phase-1 pow operand/result scratch
  std::vector<double> ckpt_hours_;
  std::vector<double> data_gb_;
  std::vector<std::uint64_t> events_;
  std::vector<std::uint64_t> written_;
  std::vector<std::uint8_t> has_pending_;
  std::vector<std::uint32_t> slot_replica_;

  std::vector<ReplicaCold> cold_;    ///< indexed by replica, not slot
  std::vector<std::uint32_t> dead_;  ///< per-round scratch (vector path)
  std::vector<TimelineArenaPoint> arena_;
  std::array<double, kFailurePrefetch> draws_{};  ///< refill scratch

  std::uint64_t total_events_ = 0;
  std::uint64_t total_failures_ = 0;
  std::uint64_t total_written_ = 0;

  std::span<RunMetrics> out_;
};

/// Classify an eligible policy into its phase-1 alpha mode.  Returns
/// false for everything else (stateful policies, skip/hook wrappers,
/// policies that read the MTBF estimate).
bool classify_policy(const core::CheckpointPolicy& policy,
                     const SimulationConfig& config, AlphaMode* mode,
                     double* constant_alpha, double* shape) {
  if (const auto* static_oci =
          dynamic_cast<const core::StaticOciPolicy*>(&policy)) {
    (void)static_oci;
    *mode = AlphaMode::kConstant;
    *constant_alpha = config.alpha_oci_hours;
    return true;
  }
  if (const auto* periodic =
          dynamic_cast<const core::PeriodicPolicy*>(&policy)) {
    *mode = AlphaMode::kConstant;
    *constant_alpha = periodic->interval_hours();
    return true;
  }
  if (const auto* ilazy = dynamic_cast<const core::ILazyPolicy*>(&policy)) {
    *mode = AlphaMode::kILazy;
    // Hookless runs hand the policy a context whose shape estimate is
    // pinned to config.shape_hint, so the effective shape is
    // run-constant.  Reproduce ILazyPolicy's own validation (same
    // requires, same messages) before trusting it for the whole batch.
    *shape = ilazy->shape().value_or(config.shape_hint);
    require(*shape > 0.0 && *shape <= 1.0,
            "iLazy requires a Weibull shape estimate in (0, 1]");
    (void)core::ILazyPolicy::lazy_interval(config.alpha_oci_hours, 0.0,
                                           *shape);
    return true;
  }
  return false;
}

/// The scalar sweep's per-replica body (sweep.cpp), used when the batch
/// fast path does not apply: results stay identical, just not lockstep.
void simulate_per_replica(const SimulationConfig& config,
                          const core::CheckpointPolicy& policy,
                          const stats::Distribution& inter_arrival,
                          const io::StorageModel& storage,
                          std::span<Rng> streams, std::span<RunMetrics> out) {
  const bool shared_policy = policy.is_stateless();
  for (std::size_t i = 0; i < streams.size(); ++i) {
    RenewalFailureSource source(inter_arrival, streams[i]);
    if (shared_policy) {
      out[i] = simulate(config, const_cast<core::CheckpointPolicy&>(policy),
                        source, storage);
    } else {
      const core::PolicyPtr replica_policy = policy.clone();
      out[i] = simulate(config, *replica_policy, source, storage);
    }
  }
}

}  // namespace

bool batch_eligible(const core::CheckpointPolicy& policy,
                    const io::StorageModel& storage) {
  if (dynamic_cast<const io::ConstantStorage*>(&storage) == nullptr) {
    return false;
  }
  return dynamic_cast<const core::StaticOciPolicy*>(&policy) != nullptr ||
         dynamic_cast<const core::PeriodicPolicy*>(&policy) != nullptr ||
         dynamic_cast<const core::ILazyPolicy*>(&policy) != nullptr;
}

void simulate_batch(const SimulationConfig& config,
                    const core::CheckpointPolicy& policy,
                    const stats::Distribution& inter_arrival,
                    const io::StorageModel& storage, std::span<Rng> streams,
                    std::span<RunMetrics> out) {
  require(streams.size() == out.size(),
          "simulate_batch needs one output slot per stream");
  if (streams.empty()) return;
  config.validate();

  AlphaMode mode = AlphaMode::kConstant;
  double constant_alpha = 0.0;
  double shape = 1.0;
  const auto* constant = dynamic_cast<const io::ConstantStorage*>(&storage);
  if (constant == nullptr ||
      !classify_policy(policy, config, &mode, &constant_alpha, &shape)) {
    simulate_per_replica(config, policy, inter_arrival, storage, streams, out);
    return;
  }

  const obs::TraceSpan span("sim.batch");
  BatchKernel kernel(config, mode, constant_alpha, shape,
                     inter_arrival.sampler(), *constant, streams, out);
  kernel.run();
}

std::size_t batch_size_from_env() {
  const char* env = std::getenv("LAZYCKPT_BATCH");
  if (env == nullptr || *env == '\0') return 64;
  const long parsed = std::strtol(env, nullptr, 10);
  if (parsed <= 0) return 0;  // 0 (or junk) disables batching
  return std::min<std::size_t>(static_cast<std::size_t>(parsed), 4096);
}

std::vector<RunMetrics> run_replicas_batched(
    const SimulationConfig& config, const core::CheckpointPolicy& policy,
    const stats::Distribution& inter_arrival, const io::StorageModel& storage,
    std::size_t replicas, std::uint64_t seed, std::size_t batch_size) {
  require(replicas >= 1, "run_replicas_batched needs replicas >= 1");
  require(batch_size >= 1, "run_replicas_batched needs batch_size >= 1");

  // Identical stream derivation to the scalar sweep: split every
  // replica's stream from the master up front, in index order, before
  // any dispatch — the batched kernel consumes stream i for replica i,
  // so results match the scalar sweep replica-for-replica.
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) streams.push_back(master.split());

  // Same telemetry shape as the scalar sweep: a replicas_done heartbeat
  // sampled from an atomic that never feeds back into results.
  const bool obs_on = obs::enabled();
  std::atomic<std::size_t> done{0};

  std::vector<RunMetrics> results(replicas);
  const std::size_t blocks = (replicas + batch_size - 1) / batch_size;
  parallel_for(blocks, [&](std::size_t block) {
    const std::size_t begin = block * batch_size;
    const std::size_t count = std::min(batch_size, replicas - begin);
    const obs::TraceSpan block_span(
        "sim.block",
        obs_on ? std::vector<obs::TraceArg>{
                     obs::TraceArg::num("first", static_cast<double>(begin)),
                     obs::TraceArg::num("count", static_cast<double>(count)),
                     obs::TraceArg::num("batch",
                                        static_cast<double>(batch_size))}
               : std::vector<obs::TraceArg>{});
    simulate_batch(config, policy, inter_arrival, storage,
                   std::span<Rng>(streams).subspan(begin, count),
                   std::span<RunMetrics>(results).subspan(begin, count));
    if (obs_on) {
      const std::size_t finished =
          done.fetch_add(count, std::memory_order_relaxed) + count;
      obs::counter("sim.replicas_done", static_cast<double>(finished));
      obs::metrics().gauge("sim.replicas_done")
          .record_max(static_cast<double>(finished));
      obs::flow_step("spec.flow", obs::current_flow());
    }
  });
  return results;
}

}  // namespace lazyckpt::sim
