#include "sim/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/error.hpp"
#include "common/fp.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lazyckpt::sim {
namespace {

/// View of the campaign's continuous failure stream re-based so that the
/// current allocation starts at time 0.  Events that fell into the queue
/// gap (before the allocation began) are drained on construction.
class ShiftedFailureSource final : public FailureSource {
 public:
  ShiftedFailureSource(FailureSource& inner, double shift)
      : inner_(&inner), shift_(shift) {
    while (inner_->peek_next() <= shift_) inner_->pop();
  }

  [[nodiscard]] double peek_next() const override {
    const double next = inner_->peek_next();
    if (fp::exact_eq(next, std::numeric_limits<double>::infinity())) {
      return next;
    }
    return next - shift_;
  }

  void pop() override { inner_->pop(); }

 private:
  FailureSource* inner_;
  double shift_;
};

}  // namespace

void CampaignConfig::validate() const {
  base.validate();
  require_positive(allocation_hours, "CampaignConfig.allocation_hours");
  require_non_negative(gap_hours, "CampaignConfig.gap_hours");
  require(max_allocations >= 1,
          "CampaignConfig.max_allocations must be >= 1");
}

CampaignResult run_campaign(const CampaignConfig& config,
                            core::CheckpointPolicy& policy,
                            FailureSource& failures,
                            const io::StorageModel& storage) {
  config.validate();
  const obs::TraceSpan campaign_span("sim.campaign");

  CampaignResult result;
  double remaining = config.base.compute_hours;
  double machine_clock = 0.0;  // continuous time across the campaign

  while (result.allocations_used < config.max_allocations &&
         remaining > 0.0) {
    SimulationConfig allocation = config.base;
    allocation.compute_hours = remaining;
    allocation.time_budget_hours = config.allocation_hours;

    const obs::TraceSpan allocation_span(
        "sim.campaign.allocation",
        obs::enabled()
            ? std::vector<obs::TraceArg>{
                  obs::TraceArg::num(
                      "index", static_cast<double>(result.allocations_used)),
                  obs::TraceArg::num("remaining_hours", remaining)}
            : std::vector<obs::TraceArg>{});
    if (obs::enabled()) {
      obs::metrics().counter("campaign.allocations").add();
    }
    ShiftedFailureSource shifted(failures, machine_clock);
    const RunMetrics run = simulate(allocation, policy, shifted, storage);

    ++result.allocations_used;
    result.committed_hours += run.compute_hours;
    result.machine_hours += run.makespan_hours;
    remaining -= run.compute_hours;
    machine_clock += run.makespan_hours + config.gap_hours;
    result.runs.push_back(run);

    if (remaining <= 1e-9) {
      result.completed = true;
      remaining = 0.0;
      break;
    }
    // An allocation that commits nothing forever would spin; the
    // max_allocations bound still terminates the loop.
  }
  return result;
}

std::vector<CampaignResult> run_campaign_replicas(
    const CampaignConfig& config, const core::CheckpointPolicy& policy,
    const stats::Distribution& inter_arrival, const io::StorageModel& storage,
    std::size_t replicas, std::uint64_t seed) {
  require(replicas >= 1, "run_campaign_replicas needs replicas >= 1");
  config.validate();
  const obs::TraceSpan span("sim.run_campaign_replicas");

  // Same determinism discipline as sim::run_replicas_raw: all RNG streams
  // are split from the master in index order before dispatch, and results
  // land in index-addressed slots — bit-identical for any thread count.
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) streams.push_back(master.split());

  // Same clone-avoidance as run_replicas_raw: the source borrows the
  // shared distribution on the stack, and a stateless policy (pure
  // function of the context, concurrency-safe by contract) is shared
  // across replicas instead of cloned per campaign.
  // Progress heartbeat, same pattern as run_replicas_raw: observes
  // completion order, never influences the index-addressed results.
  const bool obs_on = obs::enabled();
  const std::size_t heartbeat_every = std::max<std::size_t>(1, replicas / 16);
  std::atomic<std::size_t> done{0};

  const bool shared_policy = policy.is_stateless();
  return parallel_map(replicas, [&](std::size_t i) {
    RenewalFailureSource source(inter_arrival, streams[i]);
    const auto run = [&]() {
      if (shared_policy) {
        return run_campaign(config,
                            const_cast<core::CheckpointPolicy&>(policy),
                            source, storage);
      }
      const core::PolicyPtr replica_policy = policy.clone();
      return run_campaign(config, *replica_policy, source, storage);
    };
    CampaignResult result = run();
    if (obs_on) {
      const std::size_t finished =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (finished % heartbeat_every == 0 || finished == replicas) {
        obs::counter("sim.campaign_replicas_done",
                     static_cast<double>(finished));
        obs::metrics().gauge("sim.campaign_replicas_done")
            .record_max(static_cast<double>(finished));
        obs::flow_step("spec.flow", obs::current_flow());
      }
    }
    return result;
  });
}

CampaignAggregate aggregate_campaigns(
    std::span<const CampaignResult> results) {
  require(!results.empty(), "aggregate_campaigns needs results");
  CampaignAggregate agg;
  agg.replicas = results.size();
  std::size_t completed = 0;
  for (const auto& result : results) {
    agg.mean_allocations += static_cast<double>(result.allocations_used);
    agg.mean_machine_hours += result.machine_hours;
    agg.mean_committed_hours += result.committed_hours;
    for (const auto& run : result.runs) {
      agg.mean_checkpoint_hours += run.checkpoint_hours;
    }
    completed += result.completed ? 1 : 0;
  }
  const auto n = static_cast<double>(agg.replicas);
  agg.mean_allocations /= n;
  agg.mean_machine_hours /= n;
  agg.mean_committed_hours /= n;
  agg.mean_checkpoint_hours /= n;
  agg.completion_rate = static_cast<double>(completed) / n;
  return agg;
}

}  // namespace lazyckpt::sim
