#include "sim/campaign.hpp"

#include <limits>

#include "common/error.hpp"

namespace lazyckpt::sim {
namespace {

/// View of the campaign's continuous failure stream re-based so that the
/// current allocation starts at time 0.  Events that fell into the queue
/// gap (before the allocation began) are drained on construction.
class ShiftedFailureSource final : public FailureSource {
 public:
  ShiftedFailureSource(FailureSource& inner, double shift)
      : inner_(&inner), shift_(shift) {
    while (inner_->peek_next() <= shift_) inner_->pop();
  }

  [[nodiscard]] double peek_next() const override {
    const double next = inner_->peek_next();
    if (next == std::numeric_limits<double>::infinity()) return next;
    return next - shift_;
  }

  void pop() override { inner_->pop(); }

 private:
  FailureSource* inner_;
  double shift_;
};

}  // namespace

void CampaignConfig::validate() const {
  base.validate();
  require_positive(allocation_hours, "CampaignConfig.allocation_hours");
  require_non_negative(gap_hours, "CampaignConfig.gap_hours");
  require(max_allocations >= 1,
          "CampaignConfig.max_allocations must be >= 1");
}

CampaignResult run_campaign(const CampaignConfig& config,
                            core::CheckpointPolicy& policy,
                            FailureSource& failures,
                            const io::StorageModel& storage) {
  config.validate();

  CampaignResult result;
  double remaining = config.base.compute_hours;
  double machine_clock = 0.0;  // continuous time across the campaign

  while (result.allocations_used < config.max_allocations &&
         remaining > 0.0) {
    SimulationConfig allocation = config.base;
    allocation.compute_hours = remaining;
    allocation.time_budget_hours = config.allocation_hours;

    ShiftedFailureSource shifted(failures, machine_clock);
    const RunMetrics run = simulate(allocation, policy, shifted, storage);

    ++result.allocations_used;
    result.committed_hours += run.compute_hours;
    result.machine_hours += run.makespan_hours;
    remaining -= run.compute_hours;
    machine_clock += run.makespan_hours + config.gap_hours;
    result.runs.push_back(run);

    if (remaining <= 1e-9) {
      result.completed = true;
      remaining = 0.0;
      break;
    }
    // An allocation that commits nothing forever would spin; the
    // max_allocations bound still terminates the loop.
  }
  return result;
}

}  // namespace lazyckpt::sim
