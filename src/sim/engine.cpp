#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <type_traits>

#include "common/error.hpp"
#include "common/fp.hpp"
#include "core/policy/ilazy.hpp"
#include "core/policy/periodic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/descriptive.hpp"

namespace lazyckpt::sim {

void SimulationConfig::validate() const {
  require_positive(compute_hours, "SimulationConfig.compute_hours");
  require_positive(alpha_oci_hours, "SimulationConfig.alpha_oci_hours");
  require_positive(mtbf_hint_hours, "SimulationConfig.mtbf_hint_hours");
  require(shape_hint > 0.0 && shape_hint <= 1.0,
          "SimulationConfig.shape_hint must lie in (0, 1]");
  require(mtbf_window >= 1, "SimulationConfig.mtbf_window must be >= 1");
  require(checkpoint_blocking_fraction > 0.0 &&
              checkpoint_blocking_fraction <= 1.0,
          "SimulationConfig.checkpoint_blocking_fraction must lie in (0, 1]");
  require_non_negative(time_budget_hours,
                       "SimulationConfig.time_budget_hours");
  require(max_events >= 1, "SimulationConfig.max_events must be >= 1");
}

namespace {

/// Engine telemetry (obs::enabled() gated).  The event loop never touches
/// these: every count it needs already lives in RunMetrics or a loop
/// local, so the whole trial is flushed with a handful of relaxed adds
/// after the loop exits — the hot path itself is byte-for-byte the code
/// that ran before instrumentation existed.
struct EngineMetrics {
  obs::Counter& trials = obs::metrics().counter("sim.trials");
  obs::Counter& events = obs::metrics().counter("sim.events");
  obs::Counter& failures = obs::metrics().counter("sim.failures");
  obs::Counter& ckpt_written =
      obs::metrics().counter("sim.checkpoints_written");
  obs::Counter& ckpt_skipped =
      obs::metrics().counter("sim.checkpoints_skipped");
  obs::Counter& dispatch_fast = obs::metrics().counter("sim.dispatch.fast");
  obs::Counter& dispatch_generic =
      obs::metrics().counter("sim.dispatch.generic");

  static EngineMetrics& get() {
    static EngineMetrics instance;
    return instance;
  }
};

/// Mutable state of one run, grouped so the failure-handling helper can
/// operate on it without a long parameter list.
struct RunState {
  double now = 0.0;
  double committed = 0.0;    ///< work protected by the last checkpoint
  double uncommitted = 0.0;  ///< work at risk since the last checkpoint
  double last_failure = 0.0; ///< time of the most recent failure (0 = none)
  bool any_failure = false;
  int boundaries_since_failure = 0;

  // In-flight asynchronous checkpoint write (blocking fraction < 1).
  bool has_pending = false;
  double pending_commit_time = 0.0;  ///< when the async write drains
  double pending_work = 0.0;         ///< work the write will protect

  RunMetrics metrics;
  stats::MovingAverage mtbf_ma;

  // The one PolicyContext instance of the run.  Every time-varying field
  // is (re)assigned before each policy call, so patching it in place is
  // observationally identical to building a fresh snapshot — including
  // under a mutating ContextHook, whose edits never survive a refresh.
  core::PolicyContext ctx;

  explicit RunState(std::size_t window) : mtbf_ma(window) {}
};

/// The event loop, templated on the concrete policy, failure-source, and
/// storage types.  Instantiated once with the abstract interfaces (the
/// type-erased path every caller can reach) and once per fast-path
/// combination of final classes — RenewalFailureSource + ConstantStorage,
/// optionally with one of the hot policies — where the compiler resolves
/// peek_next/pop/checkpoint_time/restart_time/next_interval/should_skip
/// statically and inlines the header-defined decision bodies.  Every
/// instantiation executes the identical statement sequence, so their
/// results are bit-identical (pinned by tests/test_engine_golden.cpp).
template <class Policy, class FSource, class Storage>
RunMetrics run_loop(const SimulationConfig& config, Policy& policy,
                    FSource& failures, const Storage& storage,
                    const ContextHook& hook) {
  const obs::TraceSpan trial_span("sim.trial");
  RunState st(config.mtbf_window);
  const double work_target = config.compute_hours;
  const double budget = config.time_budget_hours > 0.0
                            ? config.time_budget_hours
                            : std::numeric_limits<double>::infinity();
  bool truncated = false;

  // Cache of the pending failure time: peek_next() is const and its value
  // changes only on pop(), so the loop queries the source once per pop
  // instead of up to four times per iteration.
  double next_failure = failures.peek_next();
  const auto pop_failure = [&]() {
    failures.pop();
    next_failure = failures.peek_next();
  };

  // Cache of β(t) keyed on the exact query time: checkpoint_time is a pure
  // function of `now` (the StorageModel contract), and the engine asks for
  // the same instant from the context builder and the checkpoint-boundary
  // code, so each distinct time is computed once.  When the storage type
  // is statically ConstantStorage the call is an inline member load, which
  // is cheaper than the cache bookkeeping — bypass it.
  double beta_cache_time = std::numeric_limits<double>::quiet_NaN();
  double beta_cache_value = 0.0;
  const auto checkpoint_time_at = [&](double now) {
    if constexpr (std::is_same_v<Storage, io::ConstantStorage>) {
      return storage.checkpoint_time(now);
    } else {
      if (fp::exact_ne(now, beta_cache_time)) {
        beta_cache_value = storage.checkpoint_time(now);
        beta_cache_time = now;
      }
      return beta_cache_value;
    }
  };

  // Context refresh, two schemes with identical observable values:
  //
  // - No hook installed (every Monte-Carlo sweep): only the fields that
  //   are a function of `now` are reassigned per refresh.  The slow-moving
  //   fields — MTBF estimate, failure/boundary counters, the config
  //   constants — are maintained at their mutation sites below, which run
  //   once per failure or boundary instead of up to three times per loop
  //   iteration.  Nothing else can touch the context, so the values handed
  //   to the policy are the same ones a full rebuild would produce.
  //
  // - Hook installed: every field is reassigned and the hook runs, so a
  //   mutating hook sees a freshly built snapshot each time and its edits
  //   never leak into later decisions — the original contract.
  const bool has_hook = static_cast<bool>(hook);
  const auto update_mtbf_field = [&]() {
    st.ctx.mtbf_estimate_hours = st.mtbf_ma.value_or(config.mtbf_hint_hours);
  };
  st.ctx.alpha_oci_hours = config.alpha_oci_hours;
  st.ctx.weibull_shape_estimate = config.shape_hint;
  update_mtbf_field();
  st.ctx.checkpoints_since_failure = 0;
  st.ctx.failures_so_far = 0;

  const auto refresh_context = [&]() -> const core::PolicyContext& {
    st.ctx.now_hours = st.now;
    st.ctx.time_since_failure_hours =
        st.any_failure ? st.now - st.last_failure : st.now;
    st.ctx.checkpoint_time_hours = checkpoint_time_at(st.now);
    if (has_hook) {
      st.ctx.alpha_oci_hours = config.alpha_oci_hours;
      update_mtbf_field();
      st.ctx.weibull_shape_estimate = config.shape_hint;
      st.ctx.checkpoints_since_failure = st.boundaries_since_failure;
      st.ctx.failures_so_far = static_cast<int>(st.metrics.failures);
      hook(st.ctx);
    }
    return st.ctx;
  };

  // The allocation expires mid-phase: time since the phase began (and any
  // uncommitted work) is lost, exactly as when the scheduler kills a job.
  const auto truncate_at_budget = [&]() {
    st.metrics.wasted_hours += budget - st.now + st.uncommitted;
    st.uncommitted = 0.0;
    st.now = budget;
    st.has_pending = false;
    truncated = true;
  };

  const auto snapshot = [&]() {
    if (!config.record_timeline) return;
    st.metrics.timeline.push_back({st.now, st.committed,
                                   st.metrics.checkpoint_hours,
                                   st.metrics.wasted_hours,
                                   st.metrics.restart_hours});
  };

  if (config.record_timeline) {
    // Rough event count: one point per checkpoint boundary plus one per
    // expected failure.  Only capacity — never affects recorded values.
    const double boundaries = work_target / config.alpha_oci_hours;
    const double expected_failures = work_target / config.mtbf_hint_hours;
    st.metrics.timeline.reserve(
        static_cast<std::size_t>(
            std::min(boundaries + expected_failures, 1e6)) +
        16);
  }

  // Commit the in-flight asynchronous write: the covered work becomes
  // safe.  Costs no time by itself.
  const auto commit_pending = [&]() {
    st.committed += st.pending_work;
    st.uncommitted -= st.pending_work;
    st.has_pending = false;
    ++st.metrics.checkpoints_written;
    st.metrics.data_written_gb += storage.checkpoint_size_gb();
    policy.on_checkpoint_complete(refresh_context());
    snapshot();
  };

  // Process a commit that drains before `limit` and before the next
  // failure (commit events consume no simulated time).
  const auto process_commit_before = [&](double limit) {
    if (st.has_pending && st.pending_commit_time <= limit &&
        st.pending_commit_time <= next_failure) {
      commit_pending();
    }
  };

  // Register a failure at the stream head: roll back, account the MTBF
  // observation, notify the policy, then pay (possibly repeated) restarts.
  const auto handle_failure = [&]() {
    const double failure_time = next_failure;
    // An async write that drained before the failure still counts.
    process_commit_before(failure_time);
    st.has_pending = false;  // anything still in flight is torn
    // Work (and time) since the last commit point is lost.
    st.metrics.wasted_hours += failure_time - st.now + st.uncommitted;
    st.uncommitted = 0.0;
    st.now = failure_time;

    const auto register_failure = [&]() {
      if (st.any_failure) {
        st.mtbf_ma.add(st.now - st.last_failure);
      } else {
        st.mtbf_ma.add(st.now);  // first gap measured from run start
      }
      st.any_failure = true;
      st.last_failure = st.now;
      st.boundaries_since_failure = 0;
      ++st.metrics.failures;
      // Maintain the slow-moving context fields for the hookless refresh.
      update_mtbf_field();
      st.ctx.checkpoints_since_failure = 0;
      st.ctx.failures_so_far = static_cast<int>(st.metrics.failures);
      pop_failure();
      policy.on_failure(refresh_context());
    };
    register_failure();

    // Restart; another failure may interrupt the restart itself, and the
    // allocation may expire during it.
    while (true) {
      const double gamma = storage.restart_time(st.now);
      if (gamma <= 0.0) break;
      const double next = next_failure;
      if (next < st.now + gamma && next < budget) {
        st.metrics.wasted_hours += next - st.now;
        st.now = next;
        register_failure();
        continue;
      }
      if (st.now + gamma > budget) {
        truncate_at_budget();
        break;
      }
      st.now += gamma;
      st.metrics.restart_hours += gamma;
      break;
    }
    snapshot();
  };

  std::uint64_t events = 0;
  while (st.committed + st.uncommitted < work_target) {
    require(++events <= config.max_events,
            "simulation exceeded max_events: the machine cannot make "
            "progress under this configuration");

    double alpha = policy.next_interval(refresh_context());
    require(std::isfinite(alpha) && alpha > 0.0,
            "policy returned a non-positive checkpoint interval");

    // --- compute phase -------------------------------------------------
    const double remaining = work_target - st.committed - st.uncommitted;
    const double chunk = std::min(alpha, remaining);
    process_commit_before(std::min(st.now + chunk, budget));
    if (next_failure < std::min(st.now + chunk, budget)) {
      handle_failure();
      if (truncated) break;
      continue;
    }
    if (st.now + chunk > budget) {
      truncate_at_budget();
      break;
    }
    st.now += chunk;
    st.uncommitted += chunk;

    if (st.committed + st.uncommitted >= work_target) {
      break;  // final segment needs no checkpoint
    }

    // --- checkpoint boundary -------------------------------------------
    ++st.boundaries_since_failure;
    st.ctx.checkpoints_since_failure = st.boundaries_since_failure;
    if (policy.should_skip(refresh_context())) {
      ++st.metrics.checkpoints_skipped;
      continue;  // work stays at risk; computing resumes immediately
    }

    // Serialize writes: if an async write is still draining, the app
    // stalls until it commits (stall time is checkpoint I/O wait).
    if (st.has_pending) {
      if (next_failure < std::min(st.pending_commit_time, budget)) {
        handle_failure();
        if (truncated) break;
        continue;
      }
      if (st.pending_commit_time > budget) {
        truncate_at_budget();
        break;
      }
      st.metrics.checkpoint_hours += st.pending_commit_time - st.now;
      st.now = st.pending_commit_time;
      commit_pending();
    }

    const double beta = checkpoint_time_at(st.now);
    require(std::isfinite(beta) && beta > 0.0,
            "storage model returned a non-positive checkpoint time");
    const double blocking = beta * config.checkpoint_blocking_fraction;
    if (next_failure < std::min(st.now + blocking, budget)) {
      handle_failure();  // partial checkpoint discarded with the work
      if (truncated) break;
      continue;
    }
    if (st.now + blocking > budget) {
      truncate_at_budget();
      break;
    }
    const double covered = st.uncommitted;  // work this write protects
    st.now += blocking;
    st.metrics.checkpoint_hours += blocking;
    st.has_pending = true;
    st.pending_work = covered;
    st.pending_commit_time = st.now + (beta - blocking);
    if (config.checkpoint_blocking_fraction >= 1.0) {
      commit_pending();  // synchronous: commits immediately
    }
  }

  // The last in-flight segment completes the job without a checkpoint —
  // unless the allocation expired, in which case only committed work
  // survives (it is what a follow-up job could restart from).
  if (!truncated) {
    st.committed += st.uncommitted;
    st.uncommitted = 0.0;
  }

  st.metrics.makespan_hours = st.now;
  st.metrics.compute_hours = st.committed;
  snapshot();

  // Conservation check: every simulated hour is attributed exactly once.
  const double attributed =
      st.metrics.compute_hours + st.metrics.checkpoint_hours +
      st.metrics.wasted_hours + st.metrics.restart_hours;
  require(std::abs(attributed - st.metrics.makespan_hours) <=
              1e-6 * std::max(1.0, st.metrics.makespan_hours),
          "internal error: time attribution does not balance");

  if (obs::enabled()) {
    EngineMetrics& em = EngineMetrics::get();
    em.trials.add();
    em.events.add(events);
    em.failures.add(st.metrics.failures);
    em.ckpt_written.add(st.metrics.checkpoints_written);
    em.ckpt_skipped.add(st.metrics.checkpoints_skipped);
  }
  return st.metrics;
}

}  // namespace

RunMetrics simulate(const SimulationConfig& config,
                    core::CheckpointPolicy& policy, FailureSource& failures,
                    const io::StorageModel& storage,
                    const ContextHook& hook) {
  config.validate();
  // Fast path for the dominant Monte-Carlo configuration: renewal
  // failures against constant storage.  Type-dispatched once per trial;
  // inside the loop every source/storage call resolves statically.  The
  // hottest policies — static OCI / periodic (the baselines behind every
  // figure) and iLazy (the paper's contribution) — additionally bind
  // statically, so their header-inline decisions fold into the loop.  Any
  // other combination — trace replay, bandwidth-trace storage, campaign
  // wrappers, remaining policies — runs the identical loop through the
  // virtual interfaces.
  if (auto* renewal = dynamic_cast<RenewalFailureSource*>(&failures)) {
    if (const auto* constant =
            dynamic_cast<const io::ConstantStorage*>(&storage)) {
      if (obs::enabled()) EngineMetrics::get().dispatch_fast.add();
      if (auto* static_oci = dynamic_cast<core::StaticOciPolicy*>(&policy)) {
        return run_loop(config, *static_oci, *renewal, *constant, hook);
      }
      if (auto* ilazy = dynamic_cast<core::ILazyPolicy*>(&policy)) {
        return run_loop(config, *ilazy, *renewal, *constant, hook);
      }
      if (auto* periodic = dynamic_cast<core::PeriodicPolicy*>(&policy)) {
        return run_loop(config, *periodic, *renewal, *constant, hook);
      }
      return run_loop(config, policy, *renewal, *constant, hook);
    }
  }
  if (obs::enabled()) EngineMetrics::get().dispatch_generic.add();
  return run_loop(config, policy, failures, storage, hook);
}

RunMetrics simulate_generic(const SimulationConfig& config,
                            core::CheckpointPolicy& policy,
                            FailureSource& failures,
                            const io::StorageModel& storage,
                            const ContextHook& hook) {
  config.validate();
  return run_loop(config, policy, failures, storage, hook);
}

}  // namespace lazyckpt::sim
