#include "sim/engine.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace lazyckpt::sim {

void SimulationConfig::validate() const {
  require_positive(compute_hours, "SimulationConfig.compute_hours");
  require_positive(alpha_oci_hours, "SimulationConfig.alpha_oci_hours");
  require_positive(mtbf_hint_hours, "SimulationConfig.mtbf_hint_hours");
  require(shape_hint > 0.0 && shape_hint <= 1.0,
          "SimulationConfig.shape_hint must lie in (0, 1]");
  require(mtbf_window >= 1, "SimulationConfig.mtbf_window must be >= 1");
  require(checkpoint_blocking_fraction > 0.0 &&
              checkpoint_blocking_fraction <= 1.0,
          "SimulationConfig.checkpoint_blocking_fraction must lie in (0, 1]");
  require_non_negative(time_budget_hours,
                       "SimulationConfig.time_budget_hours");
  require(max_events >= 1, "SimulationConfig.max_events must be >= 1");
}

namespace {

/// Mutable state of one run, grouped so the failure-handling helper can
/// operate on it without a long parameter list.
struct RunState {
  double now = 0.0;
  double committed = 0.0;    ///< work protected by the last checkpoint
  double uncommitted = 0.0;  ///< work at risk since the last checkpoint
  double last_failure = 0.0; ///< time of the most recent failure (0 = none)
  bool any_failure = false;
  int boundaries_since_failure = 0;

  // In-flight asynchronous checkpoint write (blocking fraction < 1).
  bool has_pending = false;
  double pending_commit_time = 0.0;  ///< when the async write drains
  double pending_work = 0.0;         ///< work the write will protect

  RunMetrics metrics;
  stats::MovingAverage mtbf_ma;

  explicit RunState(std::size_t window) : mtbf_ma(window) {}
};

}  // namespace

RunMetrics simulate(const SimulationConfig& config,
                    core::CheckpointPolicy& policy, FailureSource& failures,
                    const io::StorageModel& storage,
                    const ContextHook& hook) {
  config.validate();

  RunState st(config.mtbf_window);
  const double work_target = config.compute_hours;
  const double budget = config.time_budget_hours > 0.0
                            ? config.time_budget_hours
                            : std::numeric_limits<double>::infinity();
  bool truncated = false;

  // The allocation expires mid-phase: time since the phase began (and any
  // uncommitted work) is lost, exactly as when the scheduler kills a job.
  const auto truncate_at_budget = [&]() {
    st.metrics.wasted_hours += budget - st.now + st.uncommitted;
    st.uncommitted = 0.0;
    st.now = budget;
    st.has_pending = false;
    truncated = true;
  };

  const auto make_context = [&]() {
    core::PolicyContext ctx;
    ctx.now_hours = st.now;
    ctx.time_since_failure_hours =
        st.any_failure ? st.now - st.last_failure : st.now;
    ctx.alpha_oci_hours = config.alpha_oci_hours;
    ctx.checkpoint_time_hours = storage.checkpoint_time(st.now);
    ctx.mtbf_estimate_hours = st.mtbf_ma.value_or(config.mtbf_hint_hours);
    ctx.weibull_shape_estimate = config.shape_hint;
    ctx.checkpoints_since_failure = st.boundaries_since_failure;
    ctx.failures_so_far = static_cast<int>(st.metrics.failures);
    if (hook) hook(ctx);
    return ctx;
  };

  const auto snapshot = [&]() {
    if (!config.record_timeline) return;
    st.metrics.timeline.push_back({st.now, st.committed,
                                   st.metrics.checkpoint_hours,
                                   st.metrics.wasted_hours,
                                   st.metrics.restart_hours});
  };

  // Commit the in-flight asynchronous write: the covered work becomes
  // safe.  Costs no time by itself.
  const auto commit_pending = [&]() {
    st.committed += st.pending_work;
    st.uncommitted -= st.pending_work;
    st.has_pending = false;
    ++st.metrics.checkpoints_written;
    st.metrics.data_written_gb += storage.checkpoint_size_gb();
    policy.on_checkpoint_complete(make_context());
    snapshot();
  };

  // Process a commit that drains before `limit` and before the next
  // failure (commit events consume no simulated time).
  const auto process_commit_before = [&](double limit) {
    if (st.has_pending && st.pending_commit_time <= limit &&
        st.pending_commit_time <= failures.peek_next()) {
      commit_pending();
    }
  };

  // Register a failure at the stream head: roll back, account the MTBF
  // observation, notify the policy, then pay (possibly repeated) restarts.
  const auto handle_failure = [&]() {
    const double failure_time = failures.peek_next();
    // An async write that drained before the failure still counts.
    process_commit_before(failure_time);
    st.has_pending = false;  // anything still in flight is torn
    // Work (and time) since the last commit point is lost.
    st.metrics.wasted_hours += failure_time - st.now + st.uncommitted;
    st.uncommitted = 0.0;
    st.now = failure_time;

    const auto register_failure = [&]() {
      if (st.any_failure) {
        st.mtbf_ma.add(st.now - st.last_failure);
      } else {
        st.mtbf_ma.add(st.now);  // first gap measured from run start
      }
      st.any_failure = true;
      st.last_failure = st.now;
      st.boundaries_since_failure = 0;
      ++st.metrics.failures;
      failures.pop();
      policy.on_failure(make_context());
    };
    register_failure();

    // Restart; another failure may interrupt the restart itself, and the
    // allocation may expire during it.
    while (true) {
      const double gamma = storage.restart_time(st.now);
      if (gamma <= 0.0) break;
      const double next = failures.peek_next();
      if (next < st.now + gamma && next < budget) {
        st.metrics.wasted_hours += next - st.now;
        st.now = next;
        register_failure();
        continue;
      }
      if (st.now + gamma > budget) {
        truncate_at_budget();
        break;
      }
      st.now += gamma;
      st.metrics.restart_hours += gamma;
      break;
    }
    snapshot();
  };

  std::uint64_t events = 0;
  while (st.committed + st.uncommitted < work_target) {
    require(++events <= config.max_events,
            "simulation exceeded max_events: the machine cannot make "
            "progress under this configuration");

    const core::PolicyContext ctx = make_context();
    double alpha = policy.next_interval(ctx);
    require(std::isfinite(alpha) && alpha > 0.0,
            "policy returned a non-positive checkpoint interval");

    // --- compute phase -------------------------------------------------
    const double remaining = work_target - st.committed - st.uncommitted;
    const double chunk = std::min(alpha, remaining);
    process_commit_before(std::min(st.now + chunk, budget));
    if (failures.peek_next() < std::min(st.now + chunk, budget)) {
      handle_failure();
      if (truncated) break;
      continue;
    }
    if (st.now + chunk > budget) {
      truncate_at_budget();
      break;
    }
    st.now += chunk;
    st.uncommitted += chunk;

    if (st.committed + st.uncommitted >= work_target) {
      break;  // final segment needs no checkpoint
    }

    // --- checkpoint boundary -------------------------------------------
    ++st.boundaries_since_failure;
    if (policy.should_skip(make_context())) {
      ++st.metrics.checkpoints_skipped;
      continue;  // work stays at risk; computing resumes immediately
    }

    // Serialize writes: if an async write is still draining, the app
    // stalls until it commits (stall time is checkpoint I/O wait).
    if (st.has_pending) {
      if (failures.peek_next() < std::min(st.pending_commit_time, budget)) {
        handle_failure();
        if (truncated) break;
        continue;
      }
      if (st.pending_commit_time > budget) {
        truncate_at_budget();
        break;
      }
      st.metrics.checkpoint_hours += st.pending_commit_time - st.now;
      st.now = st.pending_commit_time;
      commit_pending();
    }

    const double beta = storage.checkpoint_time(st.now);
    require(std::isfinite(beta) && beta > 0.0,
            "storage model returned a non-positive checkpoint time");
    const double blocking = beta * config.checkpoint_blocking_fraction;
    if (failures.peek_next() < std::min(st.now + blocking, budget)) {
      handle_failure();  // partial checkpoint discarded with the work
      if (truncated) break;
      continue;
    }
    if (st.now + blocking > budget) {
      truncate_at_budget();
      break;
    }
    const double covered = st.uncommitted;  // work this write protects
    st.now += blocking;
    st.metrics.checkpoint_hours += blocking;
    st.has_pending = true;
    st.pending_work = covered;
    st.pending_commit_time = st.now + (beta - blocking);
    if (config.checkpoint_blocking_fraction >= 1.0) {
      commit_pending();  // synchronous: commits immediately
    }
  }

  // The last in-flight segment completes the job without a checkpoint —
  // unless the allocation expired, in which case only committed work
  // survives (it is what a follow-up job could restart from).
  if (!truncated) {
    st.committed += st.uncommitted;
    st.uncommitted = 0.0;
  }

  st.metrics.makespan_hours = st.now;
  st.metrics.compute_hours = st.committed;
  snapshot();

  // Conservation check: every simulated hour is attributed exactly once.
  const double attributed =
      st.metrics.compute_hours + st.metrics.checkpoint_hours +
      st.metrics.wasted_hours + st.metrics.restart_hours;
  require(std::abs(attributed - st.metrics.makespan_hours) <=
              1e-6 * std::max(1.0, st.metrics.makespan_hours),
          "internal error: time attribution does not balance");
  return st.metrics;
}

}  // namespace lazyckpt::sim
