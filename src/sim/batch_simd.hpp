#pragma once

/// \file batch_simd.hpp
/// \brief Internal interface between the batched trial kernel (batch.cpp)
/// and its AVX-512 round pass (batch_avx512.cpp).
///
/// The vector pass advances "pure" lanes — replicas whose next event is a
/// plain compute-then-commit boundary with no failure, no budget
/// interaction, and no completion — eight at a time.  Every arithmetic
/// operation it performs (add, sub, mul, min, compare) is IEEE-754
/// correctly rounded and therefore bitwise identical to the scalar
/// statement it replaces; lanes where any special condition might hold
/// fall back to the kernel's scalar step on untouched state.  The pass is
/// only used for synchronous checkpoints (blocking fraction 1.0) with
/// timeline recording off, where a pure boundary touches nothing but the
/// dense slot arrays below.
///
/// Not installed; include only from sim/batch.cpp and the SIMD TUs.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lazyckpt::sim::detail {

/// Dense-slot state shared with the vector round: raw pointers into the
/// kernel's structure-of-arrays storage (slot s is replica
/// slot_replica[s]; dead slots are compacted out between rounds) plus the
/// run constants a pure boundary needs.
struct BatchLanes {
  double* now;                  ///< current simulation time
  double* committed;            ///< checkpoint-protected work
  double* uncommitted;          ///< work since the last commit
  double* next_failure;         ///< absolute next failure arrival
  const double* ratio;          ///< phase-1 pow output (iLazy mode)
  double* ckpt_hours;           ///< RunMetrics::checkpoint_hours
  double* data_gb;              ///< RunMetrics::data_written_gb
  std::uint64_t* events;        ///< per-replica event counter
  std::uint64_t* written;       ///< RunMetrics::checkpoints_written

  double alpha_oci;             ///< iLazy: alpha = alpha_oci * ratio[s]
  double constant_alpha;        ///< periodic / static OCI interval
  bool ilazy;                   ///< which alpha source applies
  double work_target;           ///< config.compute_hours
  double budget;                ///< time budget (+inf when unbounded)
  double blocking;              ///< beta (synchronous: full write blocks)
  double size_gb;               ///< data written per checkpoint
  std::uint64_t max_events;     ///< config.max_events
};

/// Scalar fallback for one impure lane: runs the kernel's step() on slot
/// `slot` and returns whether the replica is still live.  May throw; the
/// vector round must stay exception-transparent.
using BatchStepFn = bool (*)(void* kernel, std::size_t slot);

/// Whether the AVX-512 round pass can run on this CPU.
[[nodiscard]] bool batch_round_avx512_supported() noexcept;

/// Phase-1 fill, eight lanes at a time:
///   ratio[s] = max(now[s] - last_failure[s], alpha_oci) / alpha_oci
/// Subtract, max, and divide are IEEE correctly rounded, so this is
/// bitwise the scalar loop; usable whenever the CPU supports it,
/// independent of the round pass's sync/timeline gates.
void batch_ratio_fill_avx512(const double* now, const double* last_failure,
                             double* ratio, std::size_t count,
                             double alpha_oci);

/// One lockstep round over `count` dense slots.  Pure lanes advance
/// vectorized; impure lanes call `step` in ascending slot order — the
/// same order the scalar round visits them.  Slots whose replica
/// finished or truncated this round are appended to `dead` in ascending
/// order; the caller finalizes and compacts them.
void batch_round_avx512(const BatchLanes& lanes, std::size_t count,
                        void* kernel, BatchStepFn step,
                        std::vector<std::uint32_t>& dead);

}  // namespace lazyckpt::sim::detail
