#pragma once

/// \file hierarchy.hpp
/// \brief N-tier hierarchy-aware checkpoint simulation (DESIGN.md §5k) —
/// the generalization that subsumes the old two-level sim/tiered module.
///
/// Every checkpoint lands on tier 0; tier k is written every `every_k`-th
/// write of tier k−1 (cadences cascade).  A failure draws one severity
/// uniform and restores from the fastest tier whose failure domain it did
/// not breach (u < survivable_k): the work beyond that tier's last flush
/// is lost, exactly the ReStore node-loss semantics.  Torn writes lose the
/// segment being committed; a torn deeper flush leaves the shallower
/// copies valid.  For a two-tier hierarchy of constant tiers this loop is
/// statement-for-statement the old simulate_tiered and reproduces it
/// bit-identically (pinned by tests/test_sim_hierarchy.cpp goldens).

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.hpp"
#include "core/policy/policy.hpp"
#include "io/hierarchy.hpp"
#include "sim/failure_source.hpp"
#include "stats/distribution.hpp"

namespace lazyckpt::sim {

/// Configuration of one hierarchy run.  Times in hours; the per-tier β/γ,
/// cadence, and survivability live in the io::StorageHierarchy itself.
struct HierarchyConfig {
  double compute_hours = 0.0;    ///< useful work to finish
  double alpha_oci_hours = 0.0;  ///< reference OCI handed to the policy
  double mtbf_hint_hours = 0.0;  ///< MTBF estimate for the policy context
  double shape_hint = 1.0;       ///< Weibull shape estimate

  std::uint64_t max_events = 50'000'000;  ///< livelock guard

  /// Throws InvalidArgument on invalid values.
  void validate() const;
};

/// Per-tier accounting of one run.
struct TierRunMetrics {
  double io_hours = 0.0;           ///< completed writes/flushes to this tier
  std::uint64_t checkpoints = 0;   ///< completed writes to this tier
  std::uint64_t restarts = 0;      ///< recoveries restored from this tier
};

/// Accounting for one hierarchy run.  Conservation holds:
/// makespan == compute + Σ tier io + wasted + restart.
struct HierarchyRunMetrics {
  double makespan_hours = 0.0;
  double compute_hours = 0.0;
  double wasted_hours = 0.0;
  double restart_hours = 0.0;

  std::uint64_t failures = 0;
  std::uint64_t checkpoints_skipped = 0;

  std::vector<TierRunMetrics> tiers;  ///< one entry per hierarchy tier

  /// Total checkpoint I/O across every tier.
  [[nodiscard]] double io_hours() const noexcept {
    double total = 0.0;
    for (const TierRunMetrics& tier : tiers) total += tier.io_hours;
    return total;
  }

  /// Data written across every tier (GB), given the per-tier sizes.
  [[nodiscard]] double data_written_gb(
      const io::StorageHierarchy& hierarchy) const;
};

/// Run one hierarchy simulation.  `severity_rng` draws one uniform per
/// failure to pick the restore tier.  Throws Error when max_events is
/// exceeded.
HierarchyRunMetrics simulate_hierarchy(const HierarchyConfig& config,
                                       const io::StorageHierarchy& hierarchy,
                                       core::CheckpointPolicy& policy,
                                       FailureSource& failures,
                                       Rng severity_rng);

/// Run `replicas` independent hierarchy simulations under renewal failures
/// drawn from `inter_arrival`.  RNG streams (one failure stream and one
/// severity stream per replica) are pre-split from `seed` in index order
/// before dispatch onto the shared parallel engine, so the output is
/// bit-identical for any LAZYCKPT_THREADS — and identical to a serial loop
/// doing `master.split()` for the source then `master.split()` for the
/// severity rng per replica, the historical ablation_tiered order.
std::vector<HierarchyRunMetrics> run_hierarchy_replicas_raw(
    const HierarchyConfig& config, const io::StorageHierarchy& hierarchy,
    const core::CheckpointPolicy& policy,
    const stats::Distribution& inter_arrival, std::size_t replicas,
    std::uint64_t seed);

/// Cross-replica means of one tier.
struct TierAggregate {
  std::string kind;  ///< tier kind label ("mem", "bb", "pfs", …)
  double mean_io_hours = 0.0;
  double mean_checkpoints = 0.0;
  double mean_restarts = 0.0;
};

/// Summary statistics over replicas of the same hierarchy experiment.
/// Sums are accumulated in replica index order, so the means are
/// bit-identical to the historical serial accumulation.
struct HierarchyAggregate {
  std::size_t replicas = 0;
  double mean_makespan_hours = 0.0;
  double mean_compute_hours = 0.0;
  double mean_wasted_hours = 0.0;
  double mean_restart_hours = 0.0;
  double mean_failures = 0.0;
  double mean_checkpoints_skipped = 0.0;
  std::vector<TierAggregate> tiers;  ///< one entry per hierarchy tier

  /// Total mean checkpoint I/O across every tier.
  [[nodiscard]] double mean_io_hours() const noexcept {
    double total = 0.0;
    for (const TierAggregate& tier : tiers) total += tier.mean_io_hours;
    return total;
  }
};

/// Aggregate a non-empty set of hierarchy runs (tier kinds are labelled
/// from `hierarchy`).
HierarchyAggregate aggregate_hierarchy(
    const io::StorageHierarchy& hierarchy,
    std::span<const HierarchyRunMetrics> runs);

}  // namespace lazyckpt::sim
