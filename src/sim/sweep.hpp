#pragma once

/// \file sweep.hpp
/// \brief Replica averaging and parameter sweeps over the simulator —
/// the workhorse behind most of the paper's figures.

#include <cstdint>
#include <span>
#include <vector>

#include "core/policy/policy.hpp"
#include "io/storage_model.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace lazyckpt::sim {

/// Run `replicas` independent simulations of `policy` under renewal
/// failures drawn from `inter_arrival` and aggregate the results.  Each
/// replica gets an independent RNG stream derived from `seed`, so two
/// different policies evaluated with the same seed see the same failure
/// arrival times — the paper's "for a fair comparison, both the iLazy and
/// OCI schemes use the same failure arrival times".  Stateful policies are
/// cloned per replica; stateless ones (CheckpointPolicy::is_stateless) are
/// shared across replicas with no per-trial heap allocation.
///
/// Replicas execute on the shared parallel engine (common/parallel.hpp;
/// thread count from LAZYCKPT_THREADS, default hardware_concurrency).
/// RNG streams are pre-split in index order before dispatch, so the output
/// is bit-identical for any thread count, including 1.
AggregateMetrics run_replicas(const SimulationConfig& config,
                              const core::CheckpointPolicy& policy,
                              const stats::Distribution& inter_arrival,
                              const io::StorageModel& storage,
                              std::size_t replicas, std::uint64_t seed);

/// Same, returning the raw per-replica metrics.
std::vector<RunMetrics> run_replicas_raw(const SimulationConfig& config,
                                         const core::CheckpointPolicy& policy,
                                         const stats::Distribution& inter_arrival,
                                         const io::StorageModel& storage,
                                         std::size_t replicas,
                                         std::uint64_t seed);

/// One point of a runtime-vs-checkpoint-interval curve (Figs. 4, 9, 15).
struct IntervalPoint {
  double interval_hours = 0.0;
  AggregateMetrics metrics;
};

/// Sweep fixed checkpoint intervals: for each value, run a PeriodicPolicy
/// at that interval (which also becomes the context's reference OCI).
std::vector<IntervalPoint> runtime_vs_interval(
    const SimulationConfig& base_config,
    const stats::Distribution& inter_arrival,
    const io::StorageModel& storage, std::span<const double> intervals,
    std::size_t replicas, std::uint64_t seed);

/// Interval with the minimum mean makespan on a swept curve.  Ties on the
/// mean are broken toward the smallest interval, so the answer does not
/// depend on the order the curve was produced in.  Requires a non-empty
/// curve.
double simulated_oci(std::span<const IntervalPoint> curve);

/// Log-spaced interval grid in [lo, hi], `count` points — convenient for
/// OCI-bracketing sweeps.  Requires 0 < lo < hi and count >= 2.
std::vector<double> log_spaced(double lo, double hi, std::size_t count);

}  // namespace lazyckpt::sim
