#include "sim/hierarchy.hpp"

#include <cmath>
#include <cstddef>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/descriptive.hpp"

namespace lazyckpt::sim {
namespace {

/// Restore-depth telemetry (obs::enabled() gated): which tier each failure
/// recovered from.  Bucket k counts restores from tier index <= k, so the
/// exported histogram reads as a survival curve of the failure domains.
struct HierarchySimMetrics {
  obs::Histogram& restore_level;

  static HierarchySimMetrics& get() {
    static constexpr double kLevelBounds[] = {0.0, 1.0, 2.0, 3.0};
    static HierarchySimMetrics instance{
        obs::metrics().histogram("sim.tier.restore_level", kLevelBounds)};
    return instance;
  }
};

}  // namespace

void HierarchyConfig::validate() const {
  require_positive(compute_hours, "HierarchyConfig.compute_hours");
  require_positive(alpha_oci_hours, "HierarchyConfig.alpha_oci_hours");
  require_positive(mtbf_hint_hours, "HierarchyConfig.mtbf_hint_hours");
  require(shape_hint > 0.0 && shape_hint <= 1.0,
          "HierarchyConfig.shape_hint must lie in (0, 1]");
  require(max_events >= 1, "HierarchyConfig.max_events must be >= 1");
}

double HierarchyRunMetrics::data_written_gb(
    const io::StorageHierarchy& hierarchy) const {
  double total = 0.0;
  for (std::size_t level = 0; level < tiers.size(); ++level) {
    total += static_cast<double>(tiers[level].checkpoints) *
             hierarchy.tier(level).model->checkpoint_size_gb();
  }
  return total;
}

HierarchyRunMetrics simulate_hierarchy(const HierarchyConfig& config,
                                       const io::StorageHierarchy& hierarchy,
                                       core::CheckpointPolicy& policy,
                                       FailureSource& failures,
                                       Rng severity_rng) {
  config.validate();
  const std::size_t levels = hierarchy.size();
  const bool obs_on = obs::enabled();

  HierarchyRunMetrics metrics;
  metrics.tiers.resize(levels);
  double now = 0.0;
  // committed[k]: work restorable from tier k (non-increasing with depth).
  std::vector<double> committed(levels, 0.0);
  double uncommitted = 0.0;  ///< work since the last completed checkpoint
  double last_failure = 0.0;
  bool any_failure = false;
  int boundaries_since_failure = 0;
  // writes_since[k] (k >= 1): writes to tier k-1 since the last flush to k.
  std::vector<std::uint64_t> writes_since(levels, 0);
  stats::MovingAverage mtbf_ma(16);

  const auto make_context = [&]() {
    core::PolicyContext ctx;
    ctx.now_hours = now;
    ctx.time_since_failure_hours = any_failure ? now - last_failure : now;
    ctx.alpha_oci_hours = config.alpha_oci_hours;
    ctx.checkpoint_time_hours = hierarchy.tier(0).model->checkpoint_time(now);
    ctx.mtbf_estimate_hours = mtbf_ma.value_or(config.mtbf_hint_hours);
    ctx.weibull_shape_estimate = config.shape_hint;
    ctx.checkpoints_since_failure = boundaries_since_failure;
    ctx.failures_so_far = static_cast<int>(metrics.failures);
    return ctx;
  };

  // Consume the pending failure: one severity uniform picks the fastest
  // tier whose failure domain was not breached, roll back to its state,
  // and pay possibly repeated restarts.
  const auto handle_failure = [&]() {
    const double failure_time = failures.peek_next();
    metrics.wasted_hours += failure_time - now + uncommitted;
    uncommitted = 0.0;
    now = failure_time;

    const auto register_failure = [&]() -> double {
      mtbf_ma.add(any_failure ? now - last_failure : now);
      any_failure = true;
      last_failure = now;
      boundaries_since_failure = 0;
      ++metrics.failures;
      failures.pop();
      policy.on_failure(make_context());

      const double u = severity_rng.uniform();
      std::size_t level = 0;
      while (u >= hierarchy.tier(level).survivable_fraction) ++level;
      if (obs_on) {
        HierarchySimMetrics::get().restore_level.observe(
            static_cast<double>(level));
      }
      ++metrics.tiers[level].restarts;
      if (level > 0) {
        // Copies on every faster tier died with their failure domain:
        // everything beyond tier `level`'s last flush must be recomputed.
        metrics.wasted_hours += committed[0] - committed[level];
        for (std::size_t j = 0; j < level; ++j) {
          committed[j] = committed[level];
        }
      }
      return hierarchy.tier(level).model->restart_time(now);
    };

    double gamma = register_failure();
    while (gamma > 0.0) {
      const double next = failures.peek_next();
      if (next < now + gamma) {
        metrics.wasted_hours += next - now;
        now = next;
        gamma = register_failure();
        continue;
      }
      now += gamma;
      metrics.restart_hours += gamma;
      break;
    }
  };

  std::uint64_t events = 0;
  const double work_target = config.compute_hours;
  while (committed[0] + uncommitted < work_target) {
    require(++events <= config.max_events,
            "hierarchy simulation exceeded max_events");

    double alpha = policy.next_interval(make_context());
    require(std::isfinite(alpha) && alpha > 0.0,
            "policy returned a non-positive interval");

    // --- compute phase -------------------------------------------------
    const double remaining = work_target - committed[0] - uncommitted;
    const double chunk = std::min(alpha, remaining);
    if (failures.peek_next() < now + chunk) {
      handle_failure();
      continue;
    }
    now += chunk;
    uncommitted += chunk;
    if (committed[0] + uncommitted >= work_target) break;

    // --- checkpoint boundary -------------------------------------------
    ++boundaries_since_failure;
    if (policy.should_skip(make_context())) {
      ++metrics.checkpoints_skipped;
      continue;
    }

    // Tier 0 write.
    const double beta0 = hierarchy.tier(0).model->checkpoint_time(now);
    if (failures.peek_next() < now + beta0) {
      handle_failure();  // torn tier-0 write: segment lost with it
      continue;
    }
    now += beta0;
    metrics.tiers[0].io_hours += beta0;
    committed[0] += uncommitted;
    uncommitted = 0.0;
    ++metrics.tiers[0].checkpoints;
    if (levels > 1) ++writes_since[1];
    policy.on_checkpoint_complete(make_context());

    // Cascading flushes: tier k absorbs every every_k-th write of tier
    // k-1.  A torn flush leaves every shallower copy valid.
    bool torn_flush = false;
    for (std::size_t level = 1; level < levels; ++level) {
      if (writes_since[level] <
          static_cast<std::uint64_t>(hierarchy.tier(level).every)) {
        break;
      }
      const double beta = hierarchy.tier(level).model->checkpoint_time(now);
      if (failures.peek_next() < now + beta) {
        handle_failure();  // torn flush: shallower tiers remain valid
        torn_flush = true;
        break;
      }
      now += beta;
      metrics.tiers[level].io_hours += beta;
      committed[level] = committed[level - 1];
      ++metrics.tiers[level].checkpoints;
      writes_since[level] = 0;
      if (level + 1 < levels) ++writes_since[level + 1];
    }
    if (torn_flush) continue;
  }

  committed[0] += uncommitted;
  metrics.makespan_hours = now;
  metrics.compute_hours = committed[0];

  const double attributed = metrics.compute_hours + metrics.io_hours() +
                            metrics.wasted_hours + metrics.restart_hours;
  require(std::abs(attributed - metrics.makespan_hours) <=
              1e-6 * std::max(1.0, metrics.makespan_hours),
          "internal error: hierarchy time attribution does not balance");
  return metrics;
}

std::vector<HierarchyRunMetrics> run_hierarchy_replicas_raw(
    const HierarchyConfig& config, const io::StorageHierarchy& hierarchy,
    const core::CheckpointPolicy& policy,
    const stats::Distribution& inter_arrival, std::size_t replicas,
    std::uint64_t seed) {
  require(replicas >= 1, "run_hierarchy_replicas needs replicas >= 1");
  const obs::TraceSpan span(
      "sim.run_hierarchy_replicas",
      obs::enabled()
          ? std::vector<obs::TraceArg>{
                obs::TraceArg::num("replicas", static_cast<double>(replicas)),
                obs::TraceArg::num("tiers",
                                   static_cast<double>(hierarchy.size()))}
          : std::vector<obs::TraceArg>{});

  // Determinism contract (common/parallel.hpp): pre-split every replica's
  // streams from the master in index order — failure source first, then
  // severity, matching the historical serial ablation_tiered loop — so
  // results are bit-identical for any thread count.
  Rng master(seed);
  std::vector<Rng> source_streams;
  std::vector<Rng> severity_streams;
  source_streams.reserve(replicas);
  severity_streams.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    source_streams.push_back(master.split());
    severity_streams.push_back(master.split());
  }

  const bool shared_policy = policy.is_stateless();
  return parallel_map(replicas, [&](std::size_t i) {
    RenewalFailureSource source(inter_arrival, source_streams[i]);
    if (shared_policy) {
      return simulate_hierarchy(config, hierarchy,
                                const_cast<core::CheckpointPolicy&>(policy),
                                source, severity_streams[i]);
    }
    const core::PolicyPtr replica_policy = policy.clone();
    return simulate_hierarchy(config, hierarchy, *replica_policy, source,
                              severity_streams[i]);
  });
}

HierarchyAggregate aggregate_hierarchy(
    const io::StorageHierarchy& hierarchy,
    std::span<const HierarchyRunMetrics> runs) {
  require(!runs.empty(), "aggregate_hierarchy needs at least one run");
  HierarchyAggregate out;
  out.replicas = runs.size();
  out.tiers.resize(hierarchy.size());
  for (std::size_t level = 0; level < hierarchy.size(); ++level) {
    out.tiers[level].kind = hierarchy.tier(level).kind;
  }
  for (const HierarchyRunMetrics& run : runs) {
    out.mean_makespan_hours += run.makespan_hours;
    out.mean_compute_hours += run.compute_hours;
    out.mean_wasted_hours += run.wasted_hours;
    out.mean_restart_hours += run.restart_hours;
    out.mean_failures += static_cast<double>(run.failures);
    out.mean_checkpoints_skipped +=
        static_cast<double>(run.checkpoints_skipped);
    for (std::size_t level = 0; level < run.tiers.size(); ++level) {
      out.tiers[level].mean_io_hours += run.tiers[level].io_hours;
      out.tiers[level].mean_checkpoints +=
          static_cast<double>(run.tiers[level].checkpoints);
      out.tiers[level].mean_restarts +=
          static_cast<double>(run.tiers[level].restarts);
    }
  }
  const double n = static_cast<double>(runs.size());
  out.mean_makespan_hours /= n;
  out.mean_compute_hours /= n;
  out.mean_wasted_hours /= n;
  out.mean_restart_hours /= n;
  out.mean_failures /= n;
  out.mean_checkpoints_skipped /= n;
  for (TierAggregate& tier : out.tiers) {
    tier.mean_io_hours /= n;
    tier.mean_checkpoints /= n;
    tier.mean_restarts /= n;
  }
  return out;
}

}  // namespace lazyckpt::sim
