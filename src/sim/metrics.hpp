#pragma once

/// \file metrics.hpp
/// \brief Per-run accounting and cross-replica aggregation.
///
/// Every hour of simulated wall time lands in exactly one bucket:
/// useful compute (work that ultimately committed), checkpoint I/O
/// (completed checkpoint writes), restart (completed recoveries), or waste
/// (compute lost to a failure, interrupted checkpoints, interrupted
/// restarts).  Conservation — makespan equals the bucket sum — is asserted
/// by the engine and re-checked by the property test suite.

#include <cstdint>
#include <span>
#include <vector>

namespace lazyckpt::sim {

/// One point of the cumulative-progress timeline (paper Fig. 13).
struct TimelinePoint {
  double time_hours = 0.0;
  double compute_hours = 0.0;     ///< committed so far
  double checkpoint_hours = 0.0;  ///< checkpoint I/O so far
  double wasted_hours = 0.0;      ///< lost work so far
  double restart_hours = 0.0;     ///< restart overhead so far
};

/// Accounting for one simulated run.
struct RunMetrics {
  double makespan_hours = 0.0;
  double compute_hours = 0.0;
  double checkpoint_hours = 0.0;
  double wasted_hours = 0.0;
  double restart_hours = 0.0;

  std::uint64_t failures = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoints_skipped = 0;

  double data_written_gb = 0.0;  ///< checkpoints_written × checkpoint size

  /// Populated only when SimulationConfig.record_timeline is set.
  std::vector<TimelinePoint> timeline;

  /// Everything that is not useful compute.
  [[nodiscard]] double overhead_hours() const noexcept {
    return makespan_hours - compute_hours;
  }
};

/// Summary statistics over replicas of the same experiment.
struct AggregateMetrics {
  std::size_t replicas = 0;
  double mean_makespan_hours = 0.0;
  double min_makespan_hours = 0.0;
  double max_makespan_hours = 0.0;
  double mean_compute_hours = 0.0;
  double mean_checkpoint_hours = 0.0;
  double min_checkpoint_hours = 0.0;
  double max_checkpoint_hours = 0.0;
  double mean_wasted_hours = 0.0;
  double mean_restart_hours = 0.0;
  double mean_failures = 0.0;
  double mean_checkpoints_written = 0.0;
  double mean_checkpoints_skipped = 0.0;
  double mean_data_written_gb = 0.0;
};

/// Aggregate a non-empty set of runs.
AggregateMetrics aggregate(std::span<const RunMetrics> runs);

}  // namespace lazyckpt::sim
