#pragma once

/// \file engine.hpp
/// \brief The event-driven checkpoint/failure simulator (paper Sec. 3.2).
///
/// The engine "does not rely on any mathematical equation, instead it
/// mimics an application execution on a leadership machine": computation
/// chunks race against probabilistically (or trace-) generated failures;
/// completed checkpoints commit work; failures roll the application back
/// to its last committed state and cost a restart.

#include <cstdint>
#include <functional>

#include "core/policy/policy.hpp"
#include "io/storage_model.hpp"
#include "sim/failure_source.hpp"
#include "sim/metrics.hpp"

namespace lazyckpt::sim {

/// Static configuration of a simulated run.
struct SimulationConfig {
  double compute_hours = 0.0;      ///< useful work to complete (W)
  double alpha_oci_hours = 0.0;    ///< reference OCI handed to policies
  double mtbf_hint_hours = 0.0;    ///< MTBF estimate before any failure is
                                   ///< observed (historical value)
  double shape_hint = 1.0;         ///< Weibull shape estimate for policies
  std::size_t mtbf_window = 16;    ///< moving-average window (events) for
                                   ///< the engine's online MTBF estimate
  bool record_timeline = false;    ///< collect TimelinePoints (Fig. 13)

  /// Fraction of each checkpoint write that blocks the application
  /// (in (0, 1]).  1.0 = classic synchronous checkpointing.  Below 1.0
  /// the remaining (1-σ)·β drains asynchronously while computation
  /// proceeds; the checkpoint only *commits* when the write completes, a
  /// failure before that loses the covered work, and a new write cannot
  /// start until the previous one drains (the app stalls if it reaches the
  /// next boundary first).
  double checkpoint_blocking_fraction = 1.0;

  /// Fixed allocation: stop the run at this wall-clock time even if the
  /// work is unfinished (0 = unlimited, run to completion).  On
  /// truncation, RunMetrics.compute_hours reports the *committed* work
  /// only — exactly what a restart after the allocation could resume from
  /// — and everything in flight counts as waste.
  double time_budget_hours = 0.0;

  std::uint64_t max_events = 50'000'000;  ///< livelock guard

  /// Throws InvalidArgument on invalid values.
  void validate() const;
};

/// Optional per-decision hook: after the engine fills a PolicyContext it
/// calls the hook, letting a harness override estimates (e.g. with
/// failure-log-agent / I/O-log-agent values in the prototype).
using ContextHook = std::function<void(core::PolicyContext&)>;

/// Run one simulation.  The policy and failure source are consumed
/// statefully (clone per replica); the storage model is read-only.
/// Throws Error if max_events is exceeded (the machine cannot progress).
///
/// When `failures` is a RenewalFailureSource and `storage` a
/// ConstantStorage (the Monte-Carlo sweep configuration behind most
/// figures), the engine dispatches — once, at entry — to a hot-path
/// instantiation of the event loop where every source and storage call is
/// devirtualized.  All other combinations run the same loop through the
/// virtual interfaces.  Both paths execute identical arithmetic and
/// return bit-identical RunMetrics (tests/test_engine_golden.cpp).
RunMetrics simulate(const SimulationConfig& config,
                    core::CheckpointPolicy& policy, FailureSource& failures,
                    const io::StorageModel& storage,
                    const ContextHook& hook = {});

/// Run one simulation on the type-erased loop, never taking the
/// devirtualized fast path regardless of the concrete argument types.
/// Exists so benchmarks can measure the fast path against the fallback in
/// one invocation and so the golden-master tests can prove the two paths
/// bit-identical; results are always equal to simulate() on the same
/// inputs.
RunMetrics simulate_generic(const SimulationConfig& config,
                            core::CheckpointPolicy& policy,
                            FailureSource& failures,
                            const io::StorageModel& storage,
                            const ContextHook& hook = {});

}  // namespace lazyckpt::sim
