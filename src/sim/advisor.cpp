#include "sim/advisor.hpp"

#include <algorithm>
#include <cstddef>

#include "common/error.hpp"
#include "common/units.hpp"
#include "core/model/oci.hpp"
#include "core/policy/factory.hpp"
#include "io/storage_model.hpp"
#include "sim/engine.hpp"
#include "sim/sweep.hpp"
#include "stats/descriptive.hpp"
#include "stats/fitting.hpp"
#include "stats/ks_test.hpp"

namespace lazyckpt::sim {
namespace {

std::string format_shape(double k) {
  // Two decimals, matching the factory's number grammar.
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%.2f", k);
  return buffer;
}

}  // namespace

Recommendation advise(const AdvisorInput& input, std::uint64_t seed,
                      std::size_t replicas) {
  require(input.inter_arrival_hours.size() >= 30,
          "advise needs at least 30 failure gaps");
  require_positive(input.checkpoint_size_gb, "AdvisorInput.checkpoint_size_gb");
  require_positive(input.bandwidth_gbps, "AdvisorInput.bandwidth_gbps");
  require_positive(input.compute_hours, "AdvisorInput.compute_hours");
  require(replicas >= 1, "advise needs replicas >= 1");

  const auto gaps = input.inter_arrival_hours;
  Recommendation rec;
  rec.mtbf_hours = stats::mean(gaps);

  // Fit the candidate set; pick the lowest K-S distance.
  const auto weibull = stats::fit_weibull(gaps);
  rec.weibull_shape = weibull.shape();
  rec.weibull_scale = weibull.scale();
  {
    const auto exponential = stats::fit_exponential(gaps);
    const auto lognormal = stats::fit_lognormal(gaps);
    const auto gamma = stats::fit_gamma(gaps);
    double best_d = stats::ks_statistic(gaps, weibull);
    rec.best_fit_name = "weibull";
    const auto consider = [&](const stats::Distribution& d) {
      const double distance = stats::ks_statistic(gaps, d);
      if (distance < best_d) {
        best_d = distance;
        rec.best_fit_name = d.name();
      }
    };
    consider(exponential);
    consider(lognormal);
    consider(gamma);
  }

  rec.beta_hours =
      transfer_time_hours(input.checkpoint_size_gb, input.bandwidth_gbps);
  rec.oci_hours = core::daly_oci(rec.beta_hours, rec.mtbf_hours);
  rec.temporal_locality = rec.weibull_shape < 0.95;
  rec.policy_spec =
      rec.temporal_locality
          ? "ilazy:" + format_shape(std::min(rec.weibull_shape, 1.0))
          : "static-oci";

  // Project against static OCI on the fitted Weibull model.
  SimulationConfig config;
  config.compute_hours = input.compute_hours;
  config.alpha_oci_hours = rec.oci_hours;
  config.mtbf_hint_hours = rec.mtbf_hours;
  config.shape_hint = std::min(rec.weibull_shape, 1.0);
  const io::ConstantStorage storage(rec.beta_hours, rec.beta_hours,
                                    input.checkpoint_size_gb);
  const auto base = run_replicas(config, *core::make_policy("static-oci"),
                                 weibull, storage, replicas, seed);
  const auto chosen = run_replicas(config, *core::make_policy(rec.policy_spec),
                                   weibull, storage, replicas, seed);
  rec.projected_io_saving =
      1.0 - chosen.mean_checkpoint_hours / base.mean_checkpoint_hours;
  rec.projected_runtime_change =
      chosen.mean_makespan_hours / base.mean_makespan_hours - 1.0;
  return rec;
}

}  // namespace lazyckpt::sim
