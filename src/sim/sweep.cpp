#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>

#include "common/error.hpp"
#include "common/fp.hpp"
#include "common/parallel.hpp"
#include "core/policy/periodic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/batch.hpp"

namespace lazyckpt::sim {

std::vector<RunMetrics> run_replicas_raw(const SimulationConfig& config,
                                         const core::CheckpointPolicy& policy,
                                         const stats::Distribution& inter_arrival,
                                         const io::StorageModel& storage,
                                         std::size_t replicas,
                                         std::uint64_t seed) {
  require(replicas >= 1, "run_replicas needs replicas >= 1");
  const obs::TraceSpan span(
      "sim.run_replicas",
      obs::enabled()
          ? std::vector<obs::TraceArg>{
                obs::TraceArg::num("replicas", static_cast<double>(replicas)),
                obs::TraceArg::num("batch", static_cast<double>(
                                                batch_size_from_env()))}
          : std::vector<obs::TraceArg>{});

  // Batched fast path: lockstep SoA kernel over blocks of replicas
  // (sim/batch.hpp), bit-identical to the per-replica loop below for the
  // hookless fast-policy configurations.  LAZYCKPT_BATCH=0 forces the
  // scalar path; ineligible (policy, storage) combinations take it
  // automatically.
  if (const std::size_t batch = batch_size_from_env();
      batch > 0 && batch_eligible(policy, storage)) {
    return run_replicas_batched(config, policy, inter_arrival, storage,
                                replicas, seed, batch);
  }

  // Determinism contract: derive every replica's RNG stream from the
  // master *before* dispatch, in index order.  The streams (and therefore
  // the results, written into index-addressed slots by parallel_map) are
  // identical for any thread count — and identical to what the historical
  // serial loop produced, since split() never depended on the simulations
  // interleaved between the calls.
  Rng master(seed);
  std::vector<Rng> streams;
  streams.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) streams.push_back(master.split());

  // Per-replica heap churn is confined to stateful policies: the failure
  // source is stack-constructed borrowing the shared distribution (no
  // clone), and a stateless policy — pure function of the context, safe
  // for concurrent calls — is shared across all replicas.  A stateless
  // policy is never written through, so shedding the const qualifier to
  // match simulate()'s signature is sound.
  // Progress heartbeat: a counter track sampled roughly sixteen times per
  // sweep.  The shared atomic is telemetry-only — results are addressed by
  // index, so completion order (which the heartbeat observes) never feeds
  // back into them.
  const bool obs_on = obs::enabled();
  const std::size_t heartbeat_every = std::max<std::size_t>(1, replicas / 16);
  std::atomic<std::size_t> done{0};

  const bool shared_policy = policy.is_stateless();
  return parallel_map(replicas, [&](std::size_t i) {
    RenewalFailureSource source(inter_arrival, streams[i]);
    const auto run = [&]() {
      if (shared_policy) {
        return simulate(config, const_cast<core::CheckpointPolicy&>(policy),
                        source, storage);
      }
      const core::PolicyPtr replica_policy = policy.clone();
      return simulate(config, *replica_policy, source, storage);
    };
    RunMetrics metrics = run();
    if (obs_on) {
      const std::size_t finished =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (finished % heartbeat_every == 0 || finished == replicas) {
        obs::counter("sim.replicas_done", static_cast<double>(finished));
        obs::metrics().gauge("sim.replicas_done")
            .record_max(static_cast<double>(finished));
        obs::flow_step("spec.flow", obs::current_flow());
      }
    }
    return metrics;
  });
}

AggregateMetrics run_replicas(const SimulationConfig& config,
                              const core::CheckpointPolicy& policy,
                              const stats::Distribution& inter_arrival,
                              const io::StorageModel& storage,
                              std::size_t replicas, std::uint64_t seed) {
  const auto runs = run_replicas_raw(config, policy, inter_arrival, storage,
                                     replicas, seed);
  return aggregate(runs);
}

std::vector<IntervalPoint> runtime_vs_interval(
    const SimulationConfig& base_config,
    const stats::Distribution& inter_arrival,
    const io::StorageModel& storage, std::span<const double> intervals,
    std::size_t replicas, std::uint64_t seed) {
  require(!intervals.empty(), "runtime_vs_interval needs intervals");
  const obs::TraceSpan span("sim.runtime_vs_interval");
  // Parallel over intervals; the per-interval replica loop inside
  // run_replicas detects the nesting and runs serially, so the region
  // stays bounded by one thread pool.  Each interval restarts from the
  // same seed (the paper's paired-failure-stream fairness), so the points
  // are independent and index-addressed — deterministic for any thread
  // count.
  return parallel_map(intervals.size(), [&](std::size_t i) {
    const double interval = intervals[i];
    SimulationConfig config = base_config;
    config.alpha_oci_hours = interval;
    const core::PeriodicPolicy policy(interval);
    return IntervalPoint{interval, run_replicas(config, policy, inter_arrival,
                                                storage, replicas, seed)};
  });
}

double simulated_oci(std::span<const IntervalPoint> curve) {
  require(!curve.empty(), "simulated_oci needs a non-empty curve");
  // Tie-break: on equal mean makespan the *smallest* interval wins.  A
  // smaller interval commits work more often for the same cost, and an
  // explicit rule keeps the result independent of curve ordering (the
  // historical first-seen-wins behavior was an artifact of float `<` over
  // whatever order the sweep produced).
  const IntervalPoint* best = &curve.front();
  for (const auto& point : curve) {
    const double makespan = point.metrics.mean_makespan_hours;
    const double best_makespan = best->metrics.mean_makespan_hours;
    if (makespan < best_makespan ||
        (fp::exact_eq(makespan, best_makespan) &&
         point.interval_hours < best->interval_hours)) {
      best = &point;
    }
  }
  return best->interval_hours;
}

std::vector<double> log_spaced(double lo, double hi, std::size_t count) {
  require(lo > 0.0 && hi > lo, "log_spaced needs 0 < lo < hi");
  require(count >= 2, "log_spaced needs count >= 2");
  std::vector<double> grid;
  grid.reserve(count);
  const double ratio = std::log(hi / lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    grid.push_back(lo * std::exp(ratio * static_cast<double>(i)));
  }
  return grid;
}

}  // namespace lazyckpt::sim
