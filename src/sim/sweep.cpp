#include "sim/sweep.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/policy/periodic.hpp"

namespace lazyckpt::sim {

std::vector<RunMetrics> run_replicas_raw(const SimulationConfig& config,
                                         const core::CheckpointPolicy& policy,
                                         const stats::Distribution& inter_arrival,
                                         const io::StorageModel& storage,
                                         std::size_t replicas,
                                         std::uint64_t seed) {
  require(replicas >= 1, "run_replicas needs replicas >= 1");
  std::vector<RunMetrics> runs;
  runs.reserve(replicas);
  Rng master(seed);
  for (std::size_t i = 0; i < replicas; ++i) {
    RenewalFailureSource source(inter_arrival.clone(), master.split());
    const core::PolicyPtr replica_policy = policy.clone();
    runs.push_back(simulate(config, *replica_policy, source, storage));
  }
  return runs;
}

AggregateMetrics run_replicas(const SimulationConfig& config,
                              const core::CheckpointPolicy& policy,
                              const stats::Distribution& inter_arrival,
                              const io::StorageModel& storage,
                              std::size_t replicas, std::uint64_t seed) {
  const auto runs = run_replicas_raw(config, policy, inter_arrival, storage,
                                     replicas, seed);
  return aggregate(runs);
}

std::vector<IntervalPoint> runtime_vs_interval(
    const SimulationConfig& base_config,
    const stats::Distribution& inter_arrival,
    const io::StorageModel& storage, std::span<const double> intervals,
    std::size_t replicas, std::uint64_t seed) {
  require(!intervals.empty(), "runtime_vs_interval needs intervals");
  std::vector<IntervalPoint> curve;
  curve.reserve(intervals.size());
  for (const double interval : intervals) {
    SimulationConfig config = base_config;
    config.alpha_oci_hours = interval;
    const core::PeriodicPolicy policy(interval);
    curve.push_back({interval, run_replicas(config, policy, inter_arrival,
                                            storage, replicas, seed)});
  }
  return curve;
}

double simulated_oci(std::span<const IntervalPoint> curve) {
  require(!curve.empty(), "simulated_oci needs a non-empty curve");
  const IntervalPoint* best = &curve.front();
  for (const auto& point : curve) {
    if (point.metrics.mean_makespan_hours <
        best->metrics.mean_makespan_hours) {
      best = &point;
    }
  }
  return best->interval_hours;
}

std::vector<double> log_spaced(double lo, double hi, std::size_t count) {
  require(lo > 0.0 && hi > lo, "log_spaced needs 0 < lo < hi");
  require(count >= 2, "log_spaced needs count >= 2");
  std::vector<double> grid;
  grid.reserve(count);
  const double ratio = std::log(hi / lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    grid.push_back(lo * std::exp(ratio * static_cast<double>(i)));
  }
  return grid;
}

}  // namespace lazyckpt::sim
