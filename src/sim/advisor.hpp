#pragma once

/// \file advisor.hpp
/// \brief Policy advisor: from a failure log and an application's
/// checkpoint parameters to a concrete, simulation-validated
/// recommendation.  This is the end-to-end "what should my site run?"
/// entry point that ties the whole library together (fitting → OCI →
/// policy selection → projected savings).

#include <cstdint>
#include <span>
#include <string>

namespace lazyckpt::sim {

/// What the advisor needs to know.
struct AdvisorInput {
  std::span<const double> inter_arrival_hours;  ///< failure gaps (>= 30)
  double checkpoint_size_gb = 0.0;              ///< application checkpoint
  double bandwidth_gbps = 0.0;                  ///< observed storage rate
  double compute_hours = 500.0;                 ///< projection horizon
};

/// The advisor's verdict.
struct Recommendation {
  // Fitted failure model.
  std::string best_fit_name;   ///< lowest K-S D among candidates
  double weibull_shape = 0.0;  ///< fitted k
  double weibull_scale = 0.0;  ///< fitted λ
  double mtbf_hours = 0.0;     ///< observed mean gap

  // Derived scheduling parameters.
  double beta_hours = 0.0;  ///< size / bandwidth
  double oci_hours = 0.0;   ///< Daly OCI at the observed MTBF
  bool temporal_locality = false;  ///< k < 0.95

  // The recommendation and its simulated projection vs static OCI.
  std::string policy_spec;              ///< e.g. "ilazy:0.58"
  double projected_io_saving = 0.0;     ///< fraction of ckpt I/O removed
  double projected_runtime_change = 0.0;///< fraction (positive = slower)
};

/// Analyze a gap sample and recommend a policy.  Deterministic in `seed`.
/// Throws InvalidArgument for fewer than 30 gaps or non-positive
/// size/bandwidth/compute.
Recommendation advise(const AdvisorInput& input, std::uint64_t seed = 1,
                      std::size_t replicas = 60);

}  // namespace lazyckpt::sim
