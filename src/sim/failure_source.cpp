#include "sim/failure_source.hpp"

#include <limits>
#include <utility>

#include "common/error.hpp"

namespace lazyckpt::sim {

namespace {

stats::Sampler checked_sampler(const stats::DistributionPtr& dist) {
  require(dist != nullptr, "RenewalFailureSource needs a distribution");
  return dist->sampler();
}

}  // namespace

RenewalFailureSource::RenewalFailureSource(stats::DistributionPtr inter_arrival,
                                           Rng rng)
    : owned_(std::move(inter_arrival)),
      sampler_(checked_sampler(owned_)),
      rng_(rng) {
  next_ = sampler_.sample(rng_);
}

RenewalFailureSource::RenewalFailureSource(
    const stats::Distribution& inter_arrival, Rng rng)
    : sampler_(inter_arrival.sampler()), rng_(rng) {
  next_ = sampler_.sample(rng_);
}

TraceFailureSource::TraceFailureSource(const failures::FailureTrace& trace,
                                       double offset_hours)
    : trace_(&trace), offset_(offset_hours) {
  require_non_negative(offset_hours, "offset_hours");
  index_ = trace_->count_until(offset_hours);
}

double TraceFailureSource::peek_next() const {
  if (index_ >= trace_->size()) {
    return std::numeric_limits<double>::infinity();
  }
  return trace_->at(index_).time_hours - offset_;
}

void TraceFailureSource::pop() {
  require(index_ < trace_->size(), "TraceFailureSource exhausted");
  ++index_;
}

}  // namespace lazyckpt::sim
