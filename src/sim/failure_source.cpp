#include "sim/failure_source.hpp"

#include <limits>
#include <utility>

#include "common/error.hpp"

namespace lazyckpt::sim {

RenewalFailureSource::RenewalFailureSource(stats::DistributionPtr inter_arrival,
                                           Rng rng)
    : inter_arrival_(std::move(inter_arrival)), rng_(rng) {
  require(inter_arrival_ != nullptr,
          "RenewalFailureSource needs a distribution");
  next_ = inter_arrival_->sample(rng_);
}

void RenewalFailureSource::pop() {
  next_ += inter_arrival_->sample(rng_);
}

TraceFailureSource::TraceFailureSource(const failures::FailureTrace& trace,
                                       double offset_hours)
    : trace_(&trace), offset_(offset_hours) {
  require_non_negative(offset_hours, "offset_hours");
  index_ = trace_->count_until(offset_hours);
}

double TraceFailureSource::peek_next() const {
  if (index_ >= trace_->size()) {
    return std::numeric_limits<double>::infinity();
  }
  return trace_->at(index_).time_hours - offset_;
}

void TraceFailureSource::pop() {
  require(index_ < trace_->size(), "TraceFailureSource exhausted");
  ++index_;
}

}  // namespace lazyckpt::sim
