#pragma once

/// \file failure_source.hpp
/// \brief Streams of absolute failure times feeding the simulator.
///
/// Two implementations: a renewal process drawing i.i.d. inter-arrival
/// times from any stats::Distribution (the paper's simulation studies), and
/// a replay of a recorded FailureTrace (the paper's prototype evaluation).

#include <memory>

#include "common/random.hpp"
#include "failures/trace.hpp"
#include "stats/distribution.hpp"
#include "stats/sampler.hpp"

namespace lazyckpt::sim {

/// A monotone stream of failure times (hours since run start).
class FailureSource {
 public:
  virtual ~FailureSource() = default;

  /// Absolute time of the next failure; +infinity when exhausted.
  [[nodiscard]] virtual double peek_next() const = 0;

  /// Consume the pending failure and schedule its successor.
  virtual void pop() = 0;
};

using FailureSourcePtr = std::unique_ptr<FailureSource>;

/// Renewal process: failure n+1 happens an i.i.d. inter-arrival after
/// failure n.  Deterministic in the supplied Rng.
///
/// Inter-arrivals are drawn through a stats::Sampler snapshotted from the
/// distribution at construction, so the per-failure cost is one
/// devirtualized inverse-CDF transform with precomputed constants (draws
/// are bit-identical to Distribution::sample).  The class is final and the
/// hot members are defined inline: when the simulation engine dispatches
/// its fast path on the concrete type, peek_next/pop compile down to a
/// load and an inlined sampler call.
class RenewalFailureSource final : public FailureSource {
 public:
  /// Owning: the source keeps the distribution alive.
  RenewalFailureSource(stats::DistributionPtr inter_arrival, Rng rng);

  /// Borrowing: `inter_arrival` must outlive the source.  Lets replica
  /// sweeps stack-construct one source per trial without cloning the
  /// shared distribution.
  RenewalFailureSource(const stats::Distribution& inter_arrival, Rng rng);

  [[nodiscard]] double peek_next() const override { return next_; }
  void pop() override { next_ += sampler_.sample(rng_); }

 private:
  stats::DistributionPtr owned_;  ///< null when borrowing
  stats::Sampler sampler_;
  Rng rng_;
  double next_ = 0.0;
};

/// Replay of a recorded trace starting at `offset_hours` (event times are
/// re-based so the run starts at trace time `offset_hours`).  Exhausts when
/// the log ends — the paper's trace-driven runs are shorter than the log.
class TraceFailureSource final : public FailureSource {
 public:
  /// `trace` must outlive the source.
  explicit TraceFailureSource(const failures::FailureTrace& trace,
                              double offset_hours = 0.0);

  [[nodiscard]] double peek_next() const override;
  void pop() override;

 private:
  const failures::FailureTrace* trace_;
  double offset_;
  std::size_t index_;
};

}  // namespace lazyckpt::sim
