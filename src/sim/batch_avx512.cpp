/// \file batch_avx512.cpp
/// \brief AVX-512 round pass for the batched trial kernel (batch_simd.hpp).
///
/// Bit-identity argument: a "pure" event — next failure beyond the
/// checkpoint boundary, no budget interaction, work target not reached —
/// takes a straight-line path through the scalar step() consisting only
/// of adds, subtracts, one multiply (iLazy's alpha), two std::min calls,
/// and comparisons.  All of those are IEEE-754 correctly rounded, so the
/// eight-lane versions below produce bitwise the scalar results as long
/// as the association order matches — which it does, statement for
/// statement (see the lane trace in comments).  Lanes for which ANY of
/// the special conditions holds are not touched by the vector stores;
/// the caller's scalar step() re-derives their event from unmodified
/// state, including the exact throw behavior for max_events and
/// non-finite intervals.
///
/// Compiled with -mavx512f -mavx512dq -ffp-contract=off (contraction
/// would fuse the alpha multiply into a later add and change results);
/// dispatched only behind __builtin_cpu_supports checks.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/batch_simd.hpp"

namespace lazyckpt::sim::detail {

bool batch_round_avx512_supported() noexcept {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
}

void batch_ratio_fill_avx512(const double* now, const double* last_failure,
                             double* ratio, std::size_t count,
                             double alpha_oci) {
  const __m512d alpha = _mm512_set1_pd(alpha_oci);
  for (std::size_t base = 0; base < count; base += 8) {
    const std::size_t rem = count - base;
    const __mmask8 lanes =
        rem >= 8 ? static_cast<__mmask8>(0xff)
                 : static_cast<__mmask8>((1u << rem) - 1u);
    const __m512d tsf =
        _mm512_sub_pd(_mm512_maskz_loadu_pd(lanes, now + base),
                      _mm512_maskz_loadu_pd(lanes, last_failure + base));
    _mm512_mask_storeu_pd(
        ratio + base, lanes,
        _mm512_div_pd(_mm512_max_pd(tsf, alpha), alpha));
  }
}

void batch_round_avx512(const BatchLanes& v, std::size_t count, void* kernel,
                        BatchStepFn step, std::vector<std::uint32_t>& dead) {
  const __m512d work_target = _mm512_set1_pd(v.work_target);
  const __m512d budget = _mm512_set1_pd(v.budget);
  const __m512d blocking = _mm512_set1_pd(v.blocking);
  const __m512d size_gb = _mm512_set1_pd(v.size_gb);
  const __m512d alpha_oci = _mm512_set1_pd(v.alpha_oci);
  const __m512d constant_alpha = _mm512_set1_pd(v.constant_alpha);
  const __m512d zero = _mm512_setzero_pd();
  const __m512d inf = _mm512_set1_pd(__builtin_inf());
  const __m512i one_u64 = _mm512_set1_epi64(1);
  const __m512i max_events =
      _mm512_set1_epi64(static_cast<long long>(v.max_events));

  for (std::size_t base = 0; base < count; base += 8) {
    const std::size_t rem = count - base;
    const __mmask8 lanes =
        rem >= 8 ? static_cast<__mmask8>(0xff)
                 : static_cast<__mmask8>((1u << rem) - 1u);

    const __m512d now = _mm512_maskz_loadu_pd(lanes, v.now + base);
    const __m512d committed =
        _mm512_maskz_loadu_pd(lanes, v.committed + base);
    const __m512d uncommitted =
        _mm512_maskz_loadu_pd(lanes, v.uncommitted + base);
    const __m512d next_failure =
        _mm512_maskz_loadu_pd(lanes, v.next_failure + base);

    // alpha: run-constant, or alpha_oci * ratio with the pow already
    // applied — the identical multiply the scalar path performs.
    const __m512d alpha =
        v.ilazy ? _mm512_mul_pd(
                      alpha_oci,
                      _mm512_maskz_loadu_pd(lanes, v.ratio + base))
                : constant_alpha;
    // Scalar requires isfinite(alpha) && alpha > 0 per event; lanes that
    // would fail go scalar so the throw site and message stay exact.
    const __mmask8 alpha_ok =
        _mm512_cmp_pd_mask(alpha, zero, _CMP_GT_OQ) &
        _mm512_cmp_pd_mask(alpha, inf, _CMP_LT_OQ);

    // Scalar: remaining = W - committed - uncommitted  (left to right)
    const __m512d remaining = _mm512_sub_pd(
        _mm512_sub_pd(work_target, committed), uncommitted);
    const __m512d chunk = _mm512_min_pd(alpha, remaining);
    const __m512d tplus = _mm512_add_pd(now, chunk);  // now + chunk
    const __m512d limit = _mm512_min_pd(tplus, budget);
    const __mmask8 fail1 =
        _mm512_cmp_pd_mask(next_failure, limit, _CMP_LT_OQ);
    const __mmask8 over1 = _mm512_cmp_pd_mask(tplus, budget, _CMP_GT_OQ);

    // Post-advance state a pure lane would hold.
    const __m512d unc1 = _mm512_add_pd(uncommitted, chunk);
    const __m512d sum1 = _mm512_add_pd(committed, unc1);
    const __mmask8 done =
        _mm512_cmp_pd_mask(sum1, work_target, _CMP_GE_OQ);

    // Checkpoint boundary: t2 = (now + chunk) + blocking, the scalar's
    // two sequential += updates.
    const __m512d t2 = _mm512_add_pd(tplus, blocking);
    const __m512d limit2 = _mm512_min_pd(t2, budget);
    const __mmask8 fail2 =
        _mm512_cmp_pd_mask(next_failure, limit2, _CMP_LT_OQ);
    const __mmask8 over2 = _mm512_cmp_pd_mask(t2, budget, _CMP_GT_OQ);

    // Event budget: a lane whose incremented counter would exceed
    // max_events goes scalar, where step() throws the canonical error.
    const __m512i ev =
        _mm512_maskz_loadu_epi64(lanes, v.events + base);
    const __m512i ev1 = _mm512_add_epi64(ev, one_u64);
    const __mmask8 ev_over = _mm512_cmpgt_epu64_mask(ev1, max_events);

    const __mmask8 impure =
        lanes & (fail1 | over1 | done | fail2 | over2 | ev_over |
                 static_cast<__mmask8>(~alpha_ok));
    const __mmask8 pure = lanes & static_cast<__mmask8>(~impure);

    if (pure != 0) {
      // The scalar straight line for a pure boundary, lane-parallel:
      //   now += chunk; uncommitted += chunk;        (compute phase)
      //   now += blocking; checkpoint_hours += blocking;
      //   covered = uncommitted;                     (== unc1)
      //   committed += covered; uncommitted -= covered;  (-> +0.0)
      //   ++checkpoints_written; data_written_gb += size;
      _mm512_mask_storeu_pd(v.now + base, pure, t2);
      _mm512_mask_storeu_pd(v.committed + base, pure,
                            _mm512_add_pd(committed, unc1));
      _mm512_mask_storeu_pd(v.uncommitted + base, pure,
                            _mm512_sub_pd(unc1, unc1));
      _mm512_mask_storeu_epi64(v.events + base, pure, ev1);
      const __m512d ckpt =
          _mm512_maskz_loadu_pd(pure, v.ckpt_hours + base);
      _mm512_mask_storeu_pd(v.ckpt_hours + base, pure,
                            _mm512_add_pd(ckpt, blocking));
      const __m512i wr =
          _mm512_maskz_loadu_epi64(pure, v.written + base);
      _mm512_mask_storeu_epi64(v.written + base, pure,
                               _mm512_add_epi64(wr, one_u64));
      const __m512d dg = _mm512_maskz_loadu_pd(pure, v.data_gb + base);
      _mm512_mask_storeu_pd(v.data_gb + base, pure,
                            _mm512_add_pd(dg, size_gb));
    }

    // Impure lanes in ascending order — the scalar round's visit order.
    // Their slots were untouched by the masked stores above, so step()
    // sees exactly the pre-round state.
    unsigned bits = impure;
    while (bits != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(bits));
      bits &= bits - 1;
      const std::size_t slot = base + lane;
      if (!step(kernel, slot)) {
        dead.push_back(static_cast<std::uint32_t>(slot));
      }
    }
  }
}

}  // namespace lazyckpt::sim::detail

#else  // !x86_64

#include "sim/batch_simd.hpp"

namespace lazyckpt::sim::detail {

bool batch_round_avx512_supported() noexcept { return false; }

void batch_ratio_fill_avx512(const double*, const double*, double*,
                             std::size_t, double) {}

void batch_round_avx512(const BatchLanes&, std::size_t, void*, BatchStepFn,
                        std::vector<std::uint32_t>&) {}

}  // namespace lazyckpt::sim::detail

#endif
