#pragma once

/// \file batch.hpp
/// \brief Batched SoA trial kernel: N Monte-Carlo replicas in flight at
/// once, bit-identical to per-replica simulate() (DESIGN.md §5h).
///
/// The scalar event loop (sim/engine.cpp run_loop) is latency-bound: each
/// iteration is one long floating-point dependency chain, and its single
/// non-trivial call — the iLazy interval's pow — cannot be vectorized
/// from inside one trial.  This kernel runs a *batch* of replicas in
/// lockstep rounds instead:
///
///   phase 1  compute every live replica's next interval in one pass —
///            for iLazy that is a single vectorized pow_n over the batch
///            (stats/exact_pow.hpp, bitwise-identical to std::pow);
///   phase 2  advance each live replica by exactly one scalar-loop
///            iteration against structure-of-arrays state.
///
/// Independent replicas give the CPU independent dependency chains, so
/// phase 2 runs throughput-bound where the scalar loop stalls, and the
/// batch amortizes what run_loop pays per event: the PolicyContext
/// refresh collapses into phase 1 (the lockstep pass reads the SoA
/// fields the eligible policies depend on directly), failure draws are
/// prefetched through the sampler's batched sample_n seam, and timeline
/// points land in a shared arena scattered per replica at the end.
///
/// Bit-identity: phase 2 executes the same statement sequence as
/// run_loop, on the same per-replica RNG stream (pre-split by the caller
/// in index order), with variates drawn in the same order — batching
/// changes only *when* values are computed, never which values.  The
/// eligible fast path covers the hookless Monte-Carlo configuration:
/// ConstantStorage plus one of the stateless no-hook policies
/// (static-OCI, periodic, iLazy).  Every other combination transparently
/// falls back to per-replica simulate() inside the same entry points, so
/// callers need no eligibility logic.  tests/test_engine_golden.cpp pins
/// the contract char-for-char on the 72 golden configs, timelines
/// included, for batch sizes {1, 8, 64} × thread counts {1, 2, 8}.

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.hpp"
#include "core/policy/policy.hpp"
#include "io/storage_model.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "stats/distribution.hpp"

namespace lazyckpt::sim {

/// True when (policy, storage) can take the lockstep SoA fast path.
/// Ineligible combinations still run through simulate_batch — one
/// replica at a time, through simulate() — with identical results.
[[nodiscard]] bool batch_eligible(const core::CheckpointPolicy& policy,
                                  const io::StorageModel& storage);

/// Simulate streams.size() replicas as one batch; out must be the same
/// length.  streams[i] is replica i's pre-split RNG stream and out[i]
/// receives its metrics — bit-identical (timeline included) to
///
///   RenewalFailureSource source(inter_arrival, streams[i]);
///   out[i] = simulate(config, policy, source, storage);
///
/// Single-threaded; callers parallelize over batches.
void simulate_batch(const SimulationConfig& config,
                    const core::CheckpointPolicy& policy,
                    const stats::Distribution& inter_arrival,
                    const io::StorageModel& storage, std::span<Rng> streams,
                    std::span<RunMetrics> out);

/// Replica batch size for the Monte-Carlo sweeps: LAZYCKPT_BATCH if set
/// (clamped to [1, 4096]; 0 disables batching entirely and the sweeps
/// run the scalar per-replica path), else 64 — large enough to fill the
/// widest pow_n lanes many times over, small enough that a batch's SoA
/// state stays cache-resident.
[[nodiscard]] std::size_t batch_size_from_env();

/// Batched equivalent of run_replicas_raw (sweep.hpp): splits per-replica
/// streams from `seed` in index order — the same streams the scalar sweep
/// derives — then runs batches of `batch_size` on the shared parallel
/// pool, each worker owning one batch.  Results are index-addressed and
/// bit-identical to the scalar sweep for every thread count and batch
/// size.
std::vector<RunMetrics> run_replicas_batched(
    const SimulationConfig& config, const core::CheckpointPolicy& policy,
    const stats::Distribution& inter_arrival, const io::StorageModel& storage,
    std::size_t replicas, std::uint64_t seed, std::size_t batch_size);

}  // namespace lazyckpt::sim
