#include "cache/serialize.hpp"

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace lazyckpt::cache {
namespace {

// ---------------------------------------------------------------------
// Writing.  Every double goes through hex_double (%a): exact round trip,
// no locale, no shortest-decimal subtleties — the same bytes on every
// IEEE-754 platform for the same bit pattern.
// ---------------------------------------------------------------------

std::string hex_double(double value) {
  char buffer[48];
  const int n = std::snprintf(buffer, sizeof(buffer), "%a", value);
  require(n > 0 && static_cast<std::size_t>(n) < sizeof(buffer),
          "cache: hexfloat formatting failed");
  return std::string(buffer, static_cast<std::size_t>(n));
}

void append_u64(std::string* out, std::uint64_t value) {
  *out += std::to_string(value);
}

std::string payload_for(const spec::ScenarioResult& result) {
  const std::string scenario_text = spec::to_string(result.scenario);

  std::string p;
  p.reserve(256 + scenario_text.size() + result.runs.size() * 160);

  p += "scenario-bytes = " + std::to_string(scenario_text.size()) + "\n";
  p += scenario_text;  // canonical form always ends in '\n'

  const auto& a = result.aggregate;
  p += "aggregate = ";
  append_u64(&p, a.replicas);
  for (const double v :
       {a.mean_makespan_hours, a.min_makespan_hours, a.max_makespan_hours,
        a.mean_compute_hours, a.mean_checkpoint_hours, a.min_checkpoint_hours,
        a.max_checkpoint_hours, a.mean_wasted_hours, a.mean_restart_hours,
        a.mean_failures, a.mean_checkpoints_written,
        a.mean_checkpoints_skipped, a.mean_data_written_gb}) {
    p += ' ';
    p += hex_double(v);
  }
  p += '\n';

  p += "runs = " + std::to_string(result.runs.size()) + "\n";
  for (const auto& run : result.runs) {
    p += "run =";
    for (const double v : {run.makespan_hours, run.compute_hours,
                           run.checkpoint_hours, run.wasted_hours,
                           run.restart_hours}) {
      p += ' ';
      p += hex_double(v);
    }
    for (const std::uint64_t v :
         {run.failures, run.checkpoints_written, run.checkpoints_skipped}) {
      p += ' ';
      append_u64(&p, v);
    }
    p += ' ';
    p += hex_double(run.data_written_gb);
    p += ' ';
    p += std::to_string(run.timeline.size());
    p += '\n';
    for (const auto& tp : run.timeline) {
      p += "tp =";
      for (const double v : {tp.time_hours, tp.compute_hours,
                             tp.checkpoint_hours, tp.wasted_hours,
                             tp.restart_hours}) {
        p += ' ';
        p += hex_double(v);
      }
      p += '\n';
    }
  }

  if (result.campaign.has_value()) {
    const auto& c = *result.campaign;
    p += "campaign = ";
    append_u64(&p, c.replicas);
    for (const double v :
         {c.mean_allocations, c.mean_machine_hours, c.mean_committed_hours,
          c.mean_checkpoint_hours, c.completion_rate}) {
      p += ' ';
      p += hex_double(v);
    }
    p += '\n';
  } else {
    p += "campaign = none\n";
  }

  if (result.hierarchy.has_value()) {
    const auto& h = *result.hierarchy;
    p += "hierarchy = ";
    append_u64(&p, h.replicas);
    for (const double v :
         {h.mean_makespan_hours, h.mean_compute_hours, h.mean_wasted_hours,
          h.mean_restart_hours, h.mean_failures,
          h.mean_checkpoints_skipped}) {
      p += ' ';
      p += hex_double(v);
    }
    p += ' ';
    p += std::to_string(h.tiers.size());
    p += '\n';
    for (const auto& tier : h.tiers) {
      // Tier kinds are [A-Za-z0-9_.-] registry names (never spaces), so
      // they are safe as space-separated tokens.
      p += "htier = " + tier.kind;
      for (const double v :
           {tier.mean_io_hours, tier.mean_checkpoints, tier.mean_restarts}) {
        p += ' ';
        p += hex_double(v);
      }
      p += '\n';
    }
  } else {
    p += "hierarchy = none\n";
  }

  p += "end\n";
  return p;
}

// ---------------------------------------------------------------------
// Reading.  A small line cursor with non-throwing failure: corruption is
// an expected condition for a cache, so every reject path produces a
// message, not an exception.
// ---------------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  /// Next '\n'-terminated line (without the newline).  Fails on EOF.
  bool next_line(std::string_view* line) {
    if (failed_ || pos_ >= text_.size()) return fail("unexpected end");
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string_view::npos) return fail("unterminated line");
    *line = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return true;
  }

  /// Consume exactly `n` raw bytes (the length-prefixed scenario text).
  bool take_bytes(std::size_t n, std::string_view* out) {
    if (failed_ || pos_ + n > text_.size()) {
      return fail("truncated byte block");
    }
    *out = text_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool fail(const std::string& why) {
    if (!failed_) error_ = why;
    failed_ = true;
    return false;
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] bool at_end() const { return pos_ == text_.size(); }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

/// Split a "key = v0 v1 v2 ..." line into its space-separated value
/// tokens, verifying the key.  Returns false (no reader fail) on mismatch
/// so callers can compose their own message.
bool parse_fields(std::string_view line, std::string_view key,
                  std::vector<std::string_view>* out) {
  const std::string prefix = std::string(key) + " =";
  if (line.substr(0, prefix.size()) != prefix) return false;
  out->clear();
  std::size_t pos = prefix.size();
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) break;
    const std::size_t end = line.find(' ', pos);
    const std::size_t stop = end == std::string_view::npos ? line.size() : end;
    out->push_back(line.substr(pos, stop - pos));
    pos = stop;
  }
  return true;
}

bool parse_hex_double(std::string_view token, double* out) {
  const std::string buffer(token);
  char* end = nullptr;
  *out = std::strtod(buffer.c_str(), &end);
  return end != nullptr && *end == '\0' && end != buffer.c_str();
}

bool parse_u64(std::string_view token, std::uint64_t* out) {
  if (token.empty()) return false;
  const std::string buffer(token);
  char* end = nullptr;
  *out = std::strtoull(buffer.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_size(std::string_view token, std::size_t* out) {
  std::uint64_t v = 0;
  if (!parse_u64(token, &v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

DeserializeOutcome reject(const std::string& why) {
  DeserializeOutcome out;
  out.error = why;
  return out;
}

}  // namespace

std::string serialize_result(const spec::ScenarioResult& result) {
  const std::string payload = payload_for(result);
  const std::uint32_t checksum = crc32(
      std::span(reinterpret_cast<const std::byte*>(payload.data()),
                payload.size()));
  char header[64];
  const int n = std::snprintf(header, sizeof(header),
                              "lazyckpt-result v%d\ncrc32 = %08x\n",
                              kResultFormatVersion, checksum);
  require(n > 0 && static_cast<std::size_t>(n) < sizeof(header),
          "cache: header formatting failed");
  return std::string(header, static_cast<std::size_t>(n)) + payload;
}

DeserializeOutcome deserialize_result(std::string_view bytes) {
  Reader reader(bytes);
  std::string_view line;

  // Header: magic + version.  A different version is not corruption — it
  // is an entry from another build generation — but either way the only
  // safe answer is "miss".
  if (!reader.next_line(&line)) return reject("empty entry");
  {
    const std::string expected =
        "lazyckpt-result v" + std::to_string(kResultFormatVersion);
    if (line != expected) {
      return reject("version mismatch: got '" + std::string(line) +
                    "', want '" + expected + "'");
    }
  }

  // Checksum over everything after the crc line.
  if (!reader.next_line(&line)) return reject("missing crc line");
  std::vector<std::string_view> fields;
  if (!parse_fields(line, "crc32", &fields) || fields.size() != 1 ||
      fields[0].size() != 8) {
    return reject("malformed crc line");
  }
  std::uint32_t stored_crc = 0;
  for (const char c : fields[0]) {
    // Strictly canonical lowercase hex: the writer never emits anything
    // else, so any other byte (including uppercase) is corruption.
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return reject("malformed crc value");
    }
    stored_crc = stored_crc << 4 | digit;
  }
  // The reader now sits exactly at the first payload byte.
  const std::string_view payload = bytes.substr(reader.pos());
  const std::uint32_t actual_crc = crc32(
      std::span(reinterpret_cast<const std::byte*>(payload.data()),
                payload.size()));
  if (actual_crc != stored_crc) {
    return reject("checksum mismatch (truncated or corrupt entry)");
  }

  // Scenario: length-prefixed canonical text, re-parsed and re-validated.
  if (!reader.next_line(&line)) return reject(reader.error());
  std::size_t scenario_bytes = 0;
  if (!parse_fields(line, "scenario-bytes", &fields) || fields.size() != 1 ||
      !parse_size(fields[0], &scenario_bytes)) {
    return reject("malformed scenario-bytes line");
  }
  std::string_view scenario_text;
  if (!reader.take_bytes(scenario_bytes, &scenario_text)) {
    return reject(reader.error());
  }

  spec::ScenarioResult result;
  try {
    result.scenario = spec::parse_scenario(scenario_text);
  } catch (const Error& error) {
    return reject(std::string("embedded scenario rejected: ") + error.what());
  }

  // Aggregate: replica count + 13 doubles in fixed order.
  if (!reader.next_line(&line)) return reject(reader.error());
  if (!parse_fields(line, "aggregate", &fields) || fields.size() != 14) {
    return reject("malformed aggregate line");
  }
  {
    auto& a = result.aggregate;
    std::uint64_t replicas = 0;
    if (!parse_u64(fields[0], &replicas)) {
      return reject("malformed aggregate replica count");
    }
    a.replicas = static_cast<std::size_t>(replicas);
    double* const targets[13] = {
        &a.mean_makespan_hours,      &a.min_makespan_hours,
        &a.max_makespan_hours,       &a.mean_compute_hours,
        &a.mean_checkpoint_hours,    &a.min_checkpoint_hours,
        &a.max_checkpoint_hours,     &a.mean_wasted_hours,
        &a.mean_restart_hours,       &a.mean_failures,
        &a.mean_checkpoints_written, &a.mean_checkpoints_skipped,
        &a.mean_data_written_gb};
    for (std::size_t i = 0; i < 13; ++i) {
      if (!parse_hex_double(fields[i + 1], targets[i])) {
        return reject("malformed aggregate field");
      }
    }
  }

  // Per-replica runs with optional timelines.
  if (!reader.next_line(&line)) return reject(reader.error());
  std::size_t run_count = 0;
  if (!parse_fields(line, "runs", &fields) || fields.size() != 1 ||
      !parse_size(fields[0], &run_count)) {
    return reject("malformed runs line");
  }
  result.runs.reserve(run_count);
  for (std::size_t r = 0; r < run_count; ++r) {
    if (!reader.next_line(&line)) return reject(reader.error());
    if (!parse_fields(line, "run", &fields) || fields.size() != 10) {
      return reject("malformed run line");
    }
    sim::RunMetrics run{};
    double* const doubles[5] = {&run.makespan_hours, &run.compute_hours,
                                &run.checkpoint_hours, &run.wasted_hours,
                                &run.restart_hours};
    for (std::size_t i = 0; i < 5; ++i) {
      if (!parse_hex_double(fields[i], doubles[i])) {
        return reject("malformed run field");
      }
    }
    if (!parse_u64(fields[5], &run.failures) ||
        !parse_u64(fields[6], &run.checkpoints_written) ||
        !parse_u64(fields[7], &run.checkpoints_skipped) ||
        !parse_hex_double(fields[8], &run.data_written_gb)) {
      return reject("malformed run field");
    }
    std::size_t timeline_count = 0;
    if (!parse_size(fields[9], &timeline_count)) {
      return reject("malformed run timeline count");
    }
    run.timeline.reserve(timeline_count);
    for (std::size_t t = 0; t < timeline_count; ++t) {
      if (!reader.next_line(&line)) return reject(reader.error());
      if (!parse_fields(line, "tp", &fields) || fields.size() != 5) {
        return reject("malformed timeline line");
      }
      sim::TimelinePoint tp{};
      double* const points[5] = {&tp.time_hours, &tp.compute_hours,
                                 &tp.checkpoint_hours, &tp.wasted_hours,
                                 &tp.restart_hours};
      for (std::size_t i = 0; i < 5; ++i) {
        if (!parse_hex_double(fields[i], points[i])) {
          return reject("malformed timeline field");
        }
      }
      run.timeline.push_back(tp);
    }
    result.runs.push_back(std::move(run));
  }

  // Campaign summary (or the explicit "none").
  if (!reader.next_line(&line)) return reject(reader.error());
  if (!parse_fields(line, "campaign", &fields)) {
    return reject("malformed campaign line");
  }
  if (fields.size() == 1 && fields[0] == "none") {
    result.campaign.reset();
  } else if (fields.size() == 6) {
    sim::CampaignAggregate c{};
    std::uint64_t replicas = 0;
    if (!parse_u64(fields[0], &replicas)) {
      return reject("malformed campaign replica count");
    }
    c.replicas = static_cast<std::size_t>(replicas);
    double* const targets[5] = {&c.mean_allocations, &c.mean_machine_hours,
                                &c.mean_committed_hours,
                                &c.mean_checkpoint_hours, &c.completion_rate};
    for (std::size_t i = 0; i < 5; ++i) {
      if (!parse_hex_double(fields[i + 1], targets[i])) {
        return reject("malformed campaign field");
      }
    }
    result.campaign = c;
  } else {
    return reject("malformed campaign line");
  }

  // Per-tier hierarchy summary (or the explicit "none").
  if (!reader.next_line(&line)) return reject(reader.error());
  if (!parse_fields(line, "hierarchy", &fields)) {
    return reject("malformed hierarchy line");
  }
  if (fields.size() == 1 && fields[0] == "none") {
    result.hierarchy.reset();
  } else if (fields.size() == 8) {
    sim::HierarchyAggregate h{};
    std::uint64_t replicas = 0;
    if (!parse_u64(fields[0], &replicas)) {
      return reject("malformed hierarchy replica count");
    }
    h.replicas = static_cast<std::size_t>(replicas);
    double* const targets[6] = {&h.mean_makespan_hours, &h.mean_compute_hours,
                                &h.mean_wasted_hours, &h.mean_restart_hours,
                                &h.mean_failures, &h.mean_checkpoints_skipped};
    for (std::size_t i = 0; i < 6; ++i) {
      if (!parse_hex_double(fields[i + 1], targets[i])) {
        return reject("malformed hierarchy field");
      }
    }
    std::size_t tier_count = 0;
    if (!parse_size(fields[7], &tier_count)) {
      return reject("malformed hierarchy tier count");
    }
    h.tiers.reserve(tier_count);
    for (std::size_t t = 0; t < tier_count; ++t) {
      if (!reader.next_line(&line)) return reject(reader.error());
      if (!parse_fields(line, "htier", &fields) || fields.size() != 4) {
        return reject("malformed htier line");
      }
      sim::TierAggregate tier{};
      tier.kind = std::string(fields[0]);
      if (!parse_hex_double(fields[1], &tier.mean_io_hours) ||
          !parse_hex_double(fields[2], &tier.mean_checkpoints) ||
          !parse_hex_double(fields[3], &tier.mean_restarts)) {
        return reject("malformed htier field");
      }
      h.tiers.push_back(std::move(tier));
    }
    result.hierarchy = std::move(h);
  } else {
    return reject("malformed hierarchy line");
  }

  if (!reader.next_line(&line) || line != "end") {
    return reject("missing end marker");
  }
  if (!reader.at_end()) return reject("trailing bytes after end marker");

  DeserializeOutcome out;
  out.result = std::move(result);
  return out;
}

}  // namespace lazyckpt::cache
