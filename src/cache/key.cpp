#include "cache/key.hpp"

#include "cache/serialize.hpp"
#include "common/digest.hpp"

namespace lazyckpt::cache {

CacheKey derive_key(const spec::Scenario& scenario) {
  scenario.validate();
  CacheKey key;
  key.canonical_text = spec::to_string(scenario);
  // Seed and replicas are already inside the canonical text; restating
  // them (with the format version) makes the key material self-describing
  // and keeps the derivation honest if the canonical writer ever learns
  // to omit defaulted seeds.
  std::string material = "lazyckpt-cache-key\n";
  material += "format = " + std::to_string(kResultFormatVersion) + "\n";
  material += "seed = " + std::to_string(scenario.seed) + "\n";
  material += "replicas = " + std::to_string(scenario.replicas) + "\n";
  material += "scenario:\n";
  material += key.canonical_text;
  key.digest_hex = content_digest_hex(material);
  return key;
}

}  // namespace lazyckpt::cache
