#pragma once

/// \file atomic_io.hpp
/// \brief The one place cache bytes touch disk (DESIGN.md §5i).
///
/// Publication discipline: an entry becomes visible with one
/// write-temp-then-rename, so a reader either sees no file or a complete
/// one — never a torn prefix, even with concurrent writers sharing the
/// cache directory across processes (last rename wins).  The lint rule
/// `cache-io-discipline` enforces that no other file in src/cache/ opens a
/// file for writing; everything funnels through atomic_write_file.

#include <optional>
#include <string>
#include <string_view>

namespace lazyckpt::cache {

/// Atomically publish `contents` as `dir`/`filename`: the bytes are
/// written to a unique temporary in the same directory (so the final
/// rename never crosses a filesystem) and renamed into place.  Parent
/// directories are created as needed.  Throws IoError when the bytes
/// cannot be durably published; on failure the temporary is removed and
/// any previously published entry is left untouched.
void atomic_write_file(const std::string& dir, const std::string& filename,
                       std::string_view contents);

/// Read an entire file.  std::nullopt when the file does not exist or
/// cannot be read — cache lookups treat both as a miss, never an error.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

}  // namespace lazyckpt::cache
