#pragma once

/// \file store.hpp
/// \brief Content-addressed result store: LRU memory tier over a
/// persistent disk tier (DESIGN.md §5i).
///
/// The store implements spec::ResultCache, so the runner never sees cache
/// internals.  A lookup derives the key from the scenario *as it will
/// run*, probes the memory tier, then the disk tier; every fetched entry
/// is verified twice — CRC-32 and format version by the deserializer,
/// then the embedded canonical scenario text byte-compared against the
/// request — before it may be served.  Anything that fails verification
/// (truncated file, flipped bit, stale format, digest collision) is a
/// miss: recompute, never crash, never serve stale bytes.
///
/// Disk publication goes through atomic_write_file (write-temp-then-
/// rename, enforced by the `cache-io-discipline` lint rule), so
/// concurrent writers race benignly — last writer wins a whole file and
/// readers can never observe a torn entry.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cache/key.hpp"
#include "spec/runner.hpp"
#include "spec/scenario.hpp"

namespace lazyckpt::cache {

/// Configuration for a ResultStore.
struct StoreOptions {
  /// Root of the on-disk tier ("<dir>/objects/<hh>/<digest>").  Empty
  /// disables persistence: the store becomes a per-process memory cache.
  std::string directory;

  /// Capacity of the in-memory LRU tier, in entries.  Past it the least
  /// recently used entry is evicted (it survives on disk when persistent).
  std::size_t max_memory_entries = 64;
};

/// Monotonic per-store counters, mirrored into the obs registry as
/// cache.{hits,misses,bytes_read,bytes_written,evictions} when tracing is
/// enabled.
struct StoreStats {
  std::uint64_t hits = 0;           ///< lookups served from either tier
  std::uint64_t misses = 0;         ///< lookups that fell through
  std::uint64_t bytes_read = 0;     ///< disk-tier bytes read (hits + rejects)
  std::uint64_t bytes_written = 0;  ///< disk-tier bytes published
  std::uint64_t evictions = 0;      ///< memory-tier LRU evictions
};

/// Two-tier content-addressed store of scenario results.  Thread-safe:
/// concurrent fetch/store from any number of threads (and processes, for
/// the disk tier) is supported.
class ResultStore final : public spec::ResultCache {
 public:
  explicit ResultStore(StoreOptions options = {});

  /// A verified result for `scenario_as_run`, or nullopt (counted miss).
  [[nodiscard]] std::optional<spec::ScenarioResult> fetch(
      const spec::Scenario& scenario_as_run) override;

  /// Publish `result` to both tiers under the key of its embedded
  /// scenario.  Throws IoError only when the disk tier cannot be written.
  void store(const spec::ScenarioResult& result) override;

  /// Counters since construction.  Copies under the store mutex.
  [[nodiscard]] StoreStats stats() const;

  [[nodiscard]] const StoreOptions& options() const noexcept {
    return options_;
  }

  /// Disk-tier path an entry with `key` lives at (empty when the store
  /// has no directory).  Exposed so tests can corrupt entries in place.
  [[nodiscard]] std::string entry_path(const CacheKey& key) const;

 private:
  struct MemoryEntry {
    std::string digest_hex;
    std::string canonical_text;
    spec::ScenarioResult result;
  };

  /// Memory-tier probe; promotes a hit to the LRU front.  Caller holds
  /// `mutex_`.
  const MemoryEntry* find_in_memory(const CacheKey& key);

  /// Memory-tier insert/replace with LRU eviction.  Caller holds `mutex_`.
  void put_in_memory(const CacheKey& key, const spec::ScenarioResult& result);

  StoreOptions options_;

  mutable std::mutex mutex_;
  std::list<MemoryEntry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<MemoryEntry>::iterator> index_;
  StoreStats stats_;
};

}  // namespace lazyckpt::cache
