#include "cache/store.hpp"

#include <utility>
#include <vector>

#include "cache/atomic_io.hpp"
#include "cache/serialize.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lazyckpt::cache {
namespace {

/// Store telemetry (obs::enabled() gated).  Counts cache behaviour across
/// every store in the process — a sweep shares one store, so the totals
/// read directly as "how much recomputation the cache saved".
struct CacheObs {
  obs::Counter& hits = obs::metrics().counter("cache.hits");
  obs::Counter& misses = obs::metrics().counter("cache.misses");
  obs::Counter& bytes_read = obs::metrics().counter("cache.bytes_read");
  obs::Counter& bytes_written = obs::metrics().counter("cache.bytes_written");
  obs::Counter& evictions = obs::metrics().counter("cache.evictions");

  static CacheObs& get() {
    static CacheObs instance;
    return instance;
  }
};

}  // namespace

ResultStore::ResultStore(StoreOptions options) : options_(std::move(options)) {
  require(options_.max_memory_entries > 0,
          "cache: max_memory_entries must be at least 1");
}

std::string ResultStore::entry_path(const CacheKey& key) const {
  if (options_.directory.empty()) return {};
  // Two-hex-char fan-out keeps directory listings short on big sweeps.
  return options_.directory + "/objects/" + key.digest_hex.substr(0, 2) +
         "/" + key.digest_hex;
}

const ResultStore::MemoryEntry* ResultStore::find_in_memory(
    const CacheKey& key) {
  const auto it = index_.find(key.digest_hex);
  if (it == index_.end()) return nullptr;
  // The digest is only the address: a real hit must carry the exact
  // canonical text we were asked about.
  if (it->second->canonical_text != key.canonical_text) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote, iterators stable
  return &*it->second;
}

void ResultStore::put_in_memory(const CacheKey& key,
                                const spec::ScenarioResult& result) {
  if (const auto it = index_.find(key.digest_hex); it != index_.end()) {
    it->second->canonical_text = key.canonical_text;
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (lru_.size() >= options_.max_memory_entries) {
    index_.erase(lru_.back().digest_hex);
    lru_.pop_back();
    ++stats_.evictions;
    if (obs::enabled()) CacheObs::get().evictions.add();
  }
  lru_.push_front(MemoryEntry{key.digest_hex, key.canonical_text, result});
  index_.emplace(key.digest_hex, lru_.begin());
}

std::optional<spec::ScenarioResult> ResultStore::fetch(
    const spec::Scenario& scenario_as_run) {
  obs::TraceSpan span(
      "cache.lookup",
      obs::enabled() ? std::vector<obs::TraceArg>{obs::TraceArg::str(
                           "scenario", scenario_as_run.name)}
                     : std::vector<obs::TraceArg>{});
  obs::flow_step("spec.flow", obs::current_flow());
  const CacheKey key = derive_key(scenario_as_run);

  std::lock_guard<std::mutex> lock(mutex_);

  if (const MemoryEntry* entry = find_in_memory(key)) {
    ++stats_.hits;
    if (obs::enabled()) CacheObs::get().hits.add();
    span.end_arg(obs::TraceArg::str("result", "hit"));
    return entry->result;
  }

  if (!options_.directory.empty()) {
    const std::string path = entry_path(key);
    if (std::optional<std::string> bytes = read_file(path)) {
      stats_.bytes_read += bytes->size();
      if (obs::enabled()) CacheObs::get().bytes_read.add(bytes->size());
      DeserializeOutcome outcome = deserialize_result(*bytes);
      // Both reject paths below fall through to a miss on purpose:
      // a corrupt/stale entry is repaired by the recompute-and-store
      // that follows, and a digest collision must never serve the
      // other scenario's result.
      if (outcome.result.has_value() &&
          spec::to_string(outcome.result->scenario) == key.canonical_text) {
        put_in_memory(key, *outcome.result);
        ++stats_.hits;
        if (obs::enabled()) CacheObs::get().hits.add();
        span.end_arg(obs::TraceArg::str("result", "hit"));
        return std::move(outcome.result);
      }
    }
  }

  ++stats_.misses;
  if (obs::enabled()) CacheObs::get().misses.add();
  span.end_arg(obs::TraceArg::str("result", "miss"));
  return std::nullopt;
}

void ResultStore::store(const spec::ScenarioResult& result) {
  const CacheKey key = derive_key(result.scenario);
  const std::string bytes =
      options_.directory.empty() ? std::string() : serialize_result(result);

  std::lock_guard<std::mutex> lock(mutex_);
  put_in_memory(key, result);
  if (!options_.directory.empty()) {
    atomic_write_file(options_.directory + "/objects/" +
                          key.digest_hex.substr(0, 2),
                      key.digest_hex, bytes);
    stats_.bytes_written += bytes.size();
    if (obs::enabled()) CacheObs::get().bytes_written.add(bytes.size());
  }
}

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace lazyckpt::cache
