#include "cache/atomic_io.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/error.hpp"

namespace lazyckpt::cache {
namespace {

/// Unique-per-call temporary name component.  Process id keeps concurrent
/// processes sharing one cache directory apart; the counter keeps threads
/// within one process apart.  No wall clock — temp naming must satisfy the
/// determinism lint like everything else in src/.
std::string unique_suffix() {
  static std::atomic<std::uint64_t> counter{0};
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return std::to_string(pid) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

void atomic_write_file(const std::string& dir, const std::string& filename,
                       std::string_view contents) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw IoError("cache: cannot create directory '" + dir +
                  "': " + ec.message());
  }

  const std::filesystem::path final_path =
      std::filesystem::path(dir) / filename;
  const std::filesystem::path temp_path =
      std::filesystem::path(dir) / (".tmp-" + unique_suffix());

  // The temporary lives in the destination directory so the rename below
  // is a same-filesystem atomic replace, not a copy.
  std::FILE* out = std::fopen(temp_path.string().c_str(), "wb");
  if (out == nullptr) {
    throw IoError("cache: cannot open temporary '" + temp_path.string() +
                  "' for writing");
  }
  const std::size_t written =
      contents.empty()
          ? 0
          : std::fwrite(contents.data(), 1, contents.size(), out);
  const bool flushed = std::fclose(out) == 0;
  if (written != contents.size() || !flushed) {
    std::remove(temp_path.string().c_str());
    throw IoError("cache: short write to '" + temp_path.string() + "'");
  }

  // POSIX rename atomically replaces the destination: readers observe
  // either the old complete entry or the new complete entry.
  if (std::rename(temp_path.string().c_str(), final_path.string().c_str()) !=
      0) {
    std::remove(temp_path.string().c_str());
    throw IoError("cache: cannot publish '" + final_path.string() + "'");
  }
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buffer.str();
}

}  // namespace lazyckpt::cache
