#pragma once

/// \file serialize.hpp
/// \brief Versioned, byte-stable serialization of scenario results
/// (DESIGN.md §5i).
///
/// The cache's contract is that a hit replays *bit-identically* to a fresh
/// run, so the value format cannot lose a single mantissa bit or reorder a
/// single field:
///
///   - every double is written as a C99 hexadecimal float (`%a`), which
///     strtod round-trips exactly on every IEEE-754 platform;
///   - fields appear in one fixed order (no map iteration anywhere);
///   - the payload carries a CRC-32 and the embedded canonical scenario
///     text, so truncated, bit-flipped, wrong-version, and wrong-key
///     entries are all detected and reported as a miss — recompute, never
///     crash, never serve stale bytes.
///
/// serialize(deserialize(bytes)) == bytes for every valid entry, which is
/// what the test suite pins and what makes "cached result == fresh run"
/// checkable with a plain string comparison.

#include <optional>
#include <string>
#include <string_view>

#include "spec/runner.hpp"

namespace lazyckpt::cache {

/// Version stamp of the on-disk result format.  Part of the cache key and
/// of every entry header: bumping it atomically retires all old entries.
/// v2 added the per-tier hierarchy summary block.
inline constexpr int kResultFormatVersion = 2;

/// Serialize `result` (scenario as run, aggregate, per-replica runs with
/// timelines, campaign summary, per-tier hierarchy summary) into the
/// versioned checksummed entry format.  Deterministic: equal results
/// produce equal bytes.
[[nodiscard]] std::string serialize_result(const spec::ScenarioResult& result);

/// Outcome of parsing an entry: exactly one of `result` / `error` is set.
struct DeserializeOutcome {
  std::optional<spec::ScenarioResult> result;
  std::string error;  ///< why the bytes were rejected (when !result)
};

/// Parse and verify one serialized entry: header + version, CRC-32 over
/// the payload, field structure, and scenario validity.  Never throws on
/// malformed bytes — corruption is a routine cache condition, reported in
/// `error` so the store can count it and fall back to recompute.
[[nodiscard]] DeserializeOutcome deserialize_result(std::string_view bytes);

}  // namespace lazyckpt::cache
