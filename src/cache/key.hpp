#pragma once

/// \file key.hpp
/// \brief Content-addressed cache keys for scenario results (DESIGN.md §5i).
///
/// The key is a 128-bit digest of exactly the inputs that determine a
/// simulation result bit-for-bit: the canonical scenario text (PR 5's
/// bit-stable serialization, which already pins seed and replica count),
/// the seed and replica count restated explicitly, and the result-format
/// version — so a format bump retires every old entry at once instead of
/// risking a misparse.  Digest equality is only the *address*; a fetched
/// entry is additionally verified by comparing its embedded canonical
/// scenario text byte-for-byte, so even a digest collision can never serve
/// the wrong result.

#include <string>

#include "spec/scenario.hpp"

namespace lazyckpt::cache {

/// The address of one scenario result in the store.
struct CacheKey {
  std::string digest_hex;      ///< 32 lowercase hex chars (128-bit digest)
  std::string canonical_text;  ///< spec::to_string of the scenario-as-run

  bool operator==(const CacheKey&) const = default;
};

/// Derive the cache key for `scenario` exactly as it will run (after any
/// replica clamping).  Throws InvalidArgument when the scenario does not
/// validate — an invalid scenario has no result to address.
[[nodiscard]] CacheKey derive_key(const spec::Scenario& scenario);

}  // namespace lazyckpt::cache
