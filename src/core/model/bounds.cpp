#include "core/model/bounds.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lazyckpt::core {
namespace {

/// Conditional probability of a failure within the next `alpha` hours given
/// survival to `t` since the previous failure.
double conditional_failure_probability(const stats::Distribution& d, double t,
                                       double alpha) {
  const double survival = 1.0 - d.cdf(t);
  if (survival <= 1e-300) return 1.0;
  return std::clamp((d.cdf(t + alpha) - d.cdf(t)) / survival, 0.0, 1.0);
}

}  // namespace

double max_lazy_interval(const stats::Distribution& inter_arrival,
                         double time_since_failure_hours,
                         const IntervalBoundParams& params) {
  require_positive(params.alpha_oci_hours, "IntervalBoundParams.alpha_oci");
  require_positive(params.checkpoint_time_hours,
                   "IntervalBoundParams.checkpoint_time");
  require(params.max_stretch >= 1.0, "IntervalBoundParams.max_stretch >= 1");
  require_non_negative(time_since_failure_hours, "time_since_failure_hours");

  const double oci = params.alpha_oci_hours;
  const double beta = params.checkpoint_time_hours;
  const double t = time_since_failure_hours;

  // admissible(alpha): extra expected lost work does not exceed I/O saved.
  const auto admissible = [&](double alpha) {
    const double extra_loss =
        conditional_failure_probability(inter_arrival, t, alpha) *
        (alpha - oci);
    const double io_saved = beta * (alpha / oci - 1.0);
    return extra_loss <= io_saved;
  };

  const double cap = params.max_stretch * oci;
  if (admissible(cap)) return cap;

  // Bisect on the admissibility frontier in (oci, cap).  alpha = oci is
  // trivially admissible (both sides are zero).
  double lo = oci;
  double hi = cap;
  for (int iteration = 0; iteration < 100 && (hi - lo) > 1e-9 * oci;
       ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (admissible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace lazyckpt::core
