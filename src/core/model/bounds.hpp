#pragma once

/// \file bounds.hpp
/// \brief No-performance-loss upper bound for the iLazy interval
/// (paper Sec. 5, Observation 9, Fig. 21).
///
/// iLazy lets the checkpoint interval grow without limit between failures;
/// if a failure finally lands late, the extra lost work can exceed the I/O
/// saved.  The paper's conservative cap: an extended interval α > α_oci is
/// admissible only while the probability-weighted *additional* lost work
/// (relative to running at α_oci) does not exceed the checkpoint cost the
/// extension saves.  With F the inter-arrival CDF and t the time since the
/// last failure at the start of the interval:
///
///   P[fail in (t, t+α) | alive at t] · (α − α_oci)  ≤  β · (α/α_oci − 1)
///
/// The right-hand side is the expected checkpoint I/O avoided by taking one
/// checkpoint of a stretched interval instead of α/α_oci OCI checkpoints.

#include "stats/distribution.hpp"

namespace lazyckpt::core {

/// Parameters of the bound computation.
struct IntervalBoundParams {
  double alpha_oci_hours = 0.0;       ///< reference OCI
  double checkpoint_time_hours = 0.0; ///< β
  double max_stretch = 64.0;          ///< never return more than this × OCI
};

/// Largest admissible interval (hours) starting `time_since_failure_hours`
/// after the last failure, under inter-arrival distribution `inter_arrival`.
/// Always returns a value in [alpha_oci, max_stretch × alpha_oci].
double max_lazy_interval(const stats::Distribution& inter_arrival,
                         double time_since_failure_hours,
                         const IntervalBoundParams& params);

}  // namespace lazyckpt::core
