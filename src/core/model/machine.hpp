#pragma once

/// \file machine.hpp
/// \brief Parameter bundles shared by the analytical model and simulator.


namespace lazyckpt::core {

/// Failure/recovery parameters of the machine an application runs on.
/// All times in hours (see common/units.hpp for the unit conventions).
struct MachineParams {
  double mtbf_hours = 0.0;             ///< system mean time between failures (M)
  double checkpoint_time_hours = 0.0;  ///< time-to-checkpoint (beta)
  double restart_time_hours = 0.0;     ///< restart/recovery overhead (gamma)

  /// Throws InvalidArgument unless all fields are positive (restart may be 0).
  void validate() const;
};

/// The application's resource demand.
struct WorkloadParams {
  double compute_hours = 0.0;  ///< useful computation to complete (W)

  /// Throws InvalidArgument unless compute_hours > 0.
  void validate() const;
};

}  // namespace lazyckpt::core
