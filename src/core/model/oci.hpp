#pragma once

/// \file oci.hpp
/// \brief Optimal checkpoint interval (OCI) estimators (paper Sec. 3).
///
/// Three estimators, in increasing fidelity:
///   - Young's first-order formula       α = √(2βM)
///   - Daly's higher-order formula       (used throughout the paper)
///   - numeric minimization of the full RuntimeModel.

#include <cstdint>
#include <span>

#include "core/model/runtime_model.hpp"

namespace lazyckpt::core {

/// Young (1974): α = √(2βM).  Requires β, M > 0.
double young_oci(double checkpoint_time_hours, double mtbf_hours);

/// Daly (2006) higher-order approximation:
///   for β < 2M: α = √(2βM)·[1 + (1/3)√(β/2M) + (1/9)(β/2M)] − β
///   otherwise:  α = M.
/// Requires β, M > 0.
double daly_oci(double checkpoint_time_hours, double mtbf_hours);

/// Numeric OCI: golden-section minimization of model.expected_runtime over
/// the feasible interval range.  Throws Error if no feasible interval
/// exists (machine too unreliable to progress at any interval).
double numeric_oci(const RuntimeModel& model);

/// Effective per-checkpoint cost of a storage hierarchy (DESIGN.md §5k):
/// tier k's β amortized over the `periods[k]` checkpoint boundaries
/// between its writes,  β_eff = Σ_k β_k / periods[k].  `betas` are the
/// per-tier checkpoint times (fastest first) and `periods` the cumulative
/// flush periods (io::StorageHierarchy::cumulative_periods: 1 for tier 0,
/// then products of the cadences).  Requires matching non-empty spans,
/// β > 0 and period >= 1 throughout.
double tier_weighted_beta(std::span<const double> betas,
                          std::span<const std::uint64_t> periods);

/// Daly's OCI with the tier-weighted effective β: the per-boundary cost a
/// hierarchy actually pays is the amortized sum over its tiers, so the
/// classic single-level derivation applies with β := tier_weighted_beta.
/// Requires the same span preconditions and M > 0.
double tiered_daly_oci(std::span<const double> betas,
                       std::span<const std::uint64_t> periods,
                       double mtbf_hours);

}  // namespace lazyckpt::core
