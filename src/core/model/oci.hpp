#pragma once

/// \file oci.hpp
/// \brief Optimal checkpoint interval (OCI) estimators (paper Sec. 3).
///
/// Three estimators, in increasing fidelity:
///   - Young's first-order formula       α = √(2βM)
///   - Daly's higher-order formula       (used throughout the paper)
///   - numeric minimization of the full RuntimeModel.

#include "core/model/runtime_model.hpp"

namespace lazyckpt::core {

/// Young (1974): α = √(2βM).  Requires β, M > 0.
double young_oci(double checkpoint_time_hours, double mtbf_hours);

/// Daly (2006) higher-order approximation:
///   for β < 2M: α = √(2βM)·[1 + (1/3)√(β/2M) + (1/9)(β/2M)] − β
///   otherwise:  α = M.
/// Requires β, M > 0.
double daly_oci(double checkpoint_time_hours, double mtbf_hours);

/// Numeric OCI: golden-section minimization of model.expected_runtime over
/// the feasible interval range.  Throws Error if no feasible interval
/// exists (machine too unreliable to progress at any interval).
double numeric_oci(const RuntimeModel& model);

}  // namespace lazyckpt::core
