#include "core/model/runtime_model.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace lazyckpt::core {

RuntimeModel::RuntimeModel(MachineParams machine, WorkloadParams workload,
                           double lost_work_fraction)
    : RuntimeModel(machine, workload,
                   [lost_work_fraction](double) { return lost_work_fraction; }) {
  require(lost_work_fraction > 0.0 && lost_work_fraction < 1.0,
          "lost_work_fraction must lie in (0, 1)");
}

RuntimeModel::RuntimeModel(MachineParams machine, WorkloadParams workload,
                           LostWorkFn lost_work)
    : machine_(machine), workload_(workload), lost_work_(std::move(lost_work)) {
  machine_.validate();
  workload_.validate();
  require(static_cast<bool>(lost_work_), "lost_work function must be set");
}

double RuntimeModel::denominator(double alpha_hours) const {
  const double segment = alpha_hours + machine_.checkpoint_time_hours;
  const double per_failure_cost =
      machine_.restart_time_hours + lost_work_(segment) * segment;
  return 1.0 - per_failure_cost / machine_.mtbf_hours;
}

bool RuntimeModel::feasible(double alpha_hours) const {
  if (!(alpha_hours > 0.0) || !std::isfinite(alpha_hours)) return false;
  return denominator(alpha_hours) > 0.0;
}

double RuntimeModel::expected_runtime(double alpha_hours) const {
  require_positive(alpha_hours, "alpha_hours");
  const double denom = denominator(alpha_hours);
  require(denom > 0.0,
          "model infeasible: expected per-failure cost exceeds MTBF at this "
          "checkpoint interval");
  const double failure_free =
      workload_.compute_hours *
      (1.0 + machine_.checkpoint_time_hours / alpha_hours);
  return failure_free / denom;
}

ModelBreakdown RuntimeModel::breakdown(double alpha_hours) const {
  ModelBreakdown b;
  b.total_hours = expected_runtime(alpha_hours);
  b.compute_hours = workload_.compute_hours;
  b.checkpoint_hours = workload_.compute_hours / alpha_hours *
                       machine_.checkpoint_time_hours;
  b.expected_failures = b.total_hours / machine_.mtbf_hours;
  b.restart_hours = b.expected_failures * machine_.restart_time_hours;
  const double segment = alpha_hours + machine_.checkpoint_time_hours;
  b.wasted_hours = b.expected_failures * lost_work_(segment) * segment;
  return b;
}

}  // namespace lazyckpt::core
