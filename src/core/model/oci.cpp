#include "core/model/oci.hpp"

#include <cmath>
#include <cstddef>

#include "common/error.hpp"

namespace lazyckpt::core {

double young_oci(double checkpoint_time_hours, double mtbf_hours) {
  require_positive(checkpoint_time_hours, "checkpoint_time_hours");
  require_positive(mtbf_hours, "mtbf_hours");
  return std::sqrt(2.0 * checkpoint_time_hours * mtbf_hours);
}

double daly_oci(double checkpoint_time_hours, double mtbf_hours) {
  require_positive(checkpoint_time_hours, "checkpoint_time_hours");
  require_positive(mtbf_hours, "mtbf_hours");
  const double beta = checkpoint_time_hours;
  const double m = mtbf_hours;
  if (beta >= 2.0 * m) return m;
  const double ratio = beta / (2.0 * m);
  const double sqrt_term = std::sqrt(2.0 * beta * m);
  return sqrt_term * (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) - beta;
}

double tier_weighted_beta(std::span<const double> betas,
                          std::span<const std::uint64_t> periods) {
  require(!betas.empty(), "tier_weighted_beta needs at least one tier");
  require(betas.size() == periods.size(),
          "tier_weighted_beta: betas and periods must match");
  double effective = 0.0;
  for (std::size_t level = 0; level < betas.size(); ++level) {
    require_positive(betas[level], "tier_weighted_beta: beta");
    require(periods[level] >= 1, "tier_weighted_beta: period must be >= 1");
    effective += betas[level] / static_cast<double>(periods[level]);
  }
  return effective;
}

double tiered_daly_oci(std::span<const double> betas,
                       std::span<const std::uint64_t> periods,
                       double mtbf_hours) {
  return daly_oci(tier_weighted_beta(betas, periods), mtbf_hours);
}

double numeric_oci(const RuntimeModel& model) {
  // Bracket the feasible range.  The lower edge is an interval much smaller
  // than beta (pure overhead); the upper edge is where the model loses
  // feasibility or several MTBFs, whichever comes first.
  const double beta = model.machine().checkpoint_time_hours;
  const double mtbf = model.machine().mtbf_hours;
  double lo = std::min(beta, mtbf) * 1e-3;
  double hi = 10.0 * mtbf;
  while (hi > lo && !model.feasible(hi)) hi *= 0.5;
  require(model.feasible(lo) && hi > lo,
          "numeric_oci: no feasible checkpoint interval exists");

  // Golden-section search; expected_runtime is unimodal in alpha over the
  // feasible range (decreasing overhead vs increasing waste).
  const double phi = 0.5 * (std::sqrt(5.0) - 1.0);  // ~0.618
  double a = lo;
  double b = hi;
  double x1 = b - phi * (b - a);
  double x2 = a + phi * (b - a);
  double f1 = model.expected_runtime(x1);
  double f2 = model.expected_runtime(x2);
  for (int iteration = 0; iteration < 200 && (b - a) > 1e-9 * b; ++iteration) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - phi * (b - a);
      f1 = model.expected_runtime(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + phi * (b - a);
      f2 = model.expected_runtime(x2);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace lazyckpt::core
