#include "core/model/machine.hpp"

#include "common/error.hpp"

namespace lazyckpt::core {

void MachineParams::validate() const {
  require_positive(mtbf_hours, "MachineParams.mtbf_hours");
  require_positive(checkpoint_time_hours,
                   "MachineParams.checkpoint_time_hours");
  require_non_negative(restart_time_hours, "MachineParams.restart_time_hours");
}

void WorkloadParams::validate() const {
  require_positive(compute_hours, "WorkloadParams.compute_hours");
}

}  // namespace lazyckpt::core
