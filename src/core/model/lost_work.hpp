#pragma once

/// \file lost_work.hpp
/// \brief The "fraction of lost work" ε (paper Sec. 3.1, Figs. 3 and 10).
///
/// When a failure interrupts a compute+checkpoint segment of length c, the
/// work completed since the start of the segment is lost.  ε(c) is the
/// expected lost fraction of a segment, conditioned on a failure landing in
/// it.  The classic analysis assumes ε = 0.5 (failures land uniformly in a
/// segment); the paper shows ε grows with c for exponential failures and is
/// systematically lower for Weibull failures with shape < 1 — temporal
/// locality means failures land early, losing less work.

#include <cstddef>

#include "common/random.hpp"
#include "stats/distribution.hpp"

namespace lazyckpt::core {

/// Closed-form ε(c) for exponential inter-arrival times with mean `mtbf`:
///   ε(c) = E[X mod c] / c  with  E[X mod c] = 1/λ − c·e^{−λc}/(1 − e^{−λc}).
/// Requires segment_hours > 0 and mtbf_hours > 0.
double lost_work_fraction_exponential(double segment_hours,
                                      double mtbf_hours);

/// Monte-Carlo ε(c) for any inter-arrival distribution: draw `samples`
/// failure times from the renewal process's stationary segment phase —
/// equivalently, draw inter-arrival times X and average (X mod c) / c as
/// the paper does with one million exponential samples.
/// Requires segment_hours > 0 and samples >= 1.
double lost_work_fraction_monte_carlo(const stats::Distribution& inter_arrival,
                                      double segment_hours,
                                      std::size_t samples, Rng& rng);

}  // namespace lazyckpt::core
