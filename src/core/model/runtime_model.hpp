#pragma once

/// \file runtime_model.hpp
/// \brief First-order analytical model of application runtime under periodic
/// checkpointing (paper Sec. 3.1, Eqs. 1–10).
///
/// The execution is a sequence of segments: α hours of computation followed
/// by β hours of checkpoint I/O.  Failures arrive at rate 1/M; each failure
/// costs a restart γ plus the expected lost fraction ε of a segment.
/// Solving the resulting fixed point gives the expected makespan:
///
///   T(α) = W · (1 + β/α) / (1 − (γ + ε·(α+β)) / M)
///
/// valid while the denominator is positive, i.e. the machine makes forward
/// progress.  The optimal checkpoint interval (OCI) minimizes T(α).

#include <functional>

#include "core/model/machine.hpp"

namespace lazyckpt::core {

/// Expected-time breakdown predicted by the model for one interval choice.
struct ModelBreakdown {
  double total_hours = 0.0;       ///< expected makespan T
  double compute_hours = 0.0;     ///< useful work W
  double checkpoint_hours = 0.0;  ///< checkpoint I/O (W/α)·β
  double wasted_hours = 0.0;      ///< lost work, (T/M)·ε·(α+β)
  double restart_hours = 0.0;     ///< restart overhead, (T/M)·γ
  double expected_failures = 0.0; ///< T / M
};

/// Analytical runtime model.  ε may be a constant (the classic 0.5) or a
/// function of the segment length for distribution-aware evaluation.
class RuntimeModel {
 public:
  /// Map from segment length (α+β, hours) to expected lost-work fraction.
  using LostWorkFn = std::function<double(double segment_hours)>;

  /// Construct with constant ε (default 0.5, the uniform-landing value).
  RuntimeModel(MachineParams machine, WorkloadParams workload,
               double lost_work_fraction = 0.5);

  /// Construct with a segment-length-dependent ε.
  RuntimeModel(MachineParams machine, WorkloadParams workload,
               LostWorkFn lost_work);

  /// Expected makespan for checkpoint interval `alpha_hours`.
  /// Throws InvalidArgument if alpha_hours <= 0 or the machine cannot make
  /// forward progress at this interval (denominator <= 0).
  [[nodiscard]] double expected_runtime(double alpha_hours) const;

  /// True if the model is defined (progress is possible) at this interval.
  [[nodiscard]] bool feasible(double alpha_hours) const;

  /// Full expected breakdown at `alpha_hours`.
  [[nodiscard]] ModelBreakdown breakdown(double alpha_hours) const;

  [[nodiscard]] const MachineParams& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const WorkloadParams& workload() const noexcept {
    return workload_;
  }

 private:
  [[nodiscard]] double denominator(double alpha_hours) const;

  MachineParams machine_;
  WorkloadParams workload_;
  LostWorkFn lost_work_;
};

}  // namespace lazyckpt::core
