#include "core/model/lost_work.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lazyckpt::core {

double lost_work_fraction_exponential(double segment_hours,
                                      double mtbf_hours) {
  require_positive(segment_hours, "segment_hours");
  require_positive(mtbf_hours, "mtbf_hours");
  const double lambda = 1.0 / mtbf_hours;
  const double lc = lambda * segment_hours;
  // E[X mod c] = 1/λ − c e^{−λc} / (1 − e^{−λc}); divide by c.
  const double expected_mod =
      mtbf_hours - segment_hours * std::exp(-lc) / (-std::expm1(-lc));
  return expected_mod / segment_hours;
}

double lost_work_fraction_monte_carlo(const stats::Distribution& inter_arrival,
                                      double segment_hours,
                                      std::size_t samples, Rng& rng) {
  require_positive(segment_hours, "segment_hours");
  require(samples >= 1, "lost_work_fraction_monte_carlo needs samples >= 1");
  double sum = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double x = inter_arrival.sample(rng);
    sum += std::fmod(x, segment_hours);
  }
  return sum / (static_cast<double>(samples) * segment_hours);
}

}  // namespace lazyckpt::core
