#pragma once

/// \file ilazy.hpp
/// \brief iLazy checkpointing (paper Sec. 5, Eq. 11) — the paper's primary
/// contribution.
///
/// Weibull-distributed failures with shape k < 1 have a hazard rate that
/// *decreases* with the time t since the last failure.  iLazy stretches the
/// checkpoint interval with the inverse of that slope:
///
///   α_lazy(t) = α_oci · (t / α_oci)^(1−k)
///
/// clamped below at α_oci (immediately after a failure) and reset on every
/// failure.  With k = 1 (exponential failures) this degenerates exactly to
/// OCI checkpointing — no harm, no benefit.

#include <optional>

#include "core/policy/policy.hpp"

namespace lazyckpt::core {

/// iLazy: increasingly lazy checkpoint intervals between failures.
class ILazyPolicy final : public CheckpointPolicy {
 public:
  /// Construct with an explicit Weibull shape, or (default) take the shape
  /// from the context's running estimate.
  explicit ILazyPolicy(std::optional<double> shape = std::nullopt);

  [[nodiscard]] double next_interval(const PolicyContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "ilazy"; }
  [[nodiscard]] PolicyPtr clone() const override;

  /// Eq. 11 as a pure function: the interval to use when the last failure
  /// was `time_since_failure` hours ago.  Clamped below at alpha_oci.
  /// Requires alpha_oci > 0, shape in (0, 1].
  static double lazy_interval(double alpha_oci_hours,
                              double time_since_failure_hours, double shape);

 private:
  [[nodiscard]] double effective_shape(const PolicyContext& ctx) const;

  std::optional<double> shape_;
};

}  // namespace lazyckpt::core
