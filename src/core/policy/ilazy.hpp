#pragma once

/// \file ilazy.hpp
/// \brief iLazy checkpointing (paper Sec. 5, Eq. 11) — the paper's primary
/// contribution.
///
/// Weibull-distributed failures with shape k < 1 have a hazard rate that
/// *decreases* with the time t since the last failure.  iLazy stretches the
/// checkpoint interval with the inverse of that slope:
///
///   α_lazy(t) = α_oci · (t / α_oci)^(1−k)
///
/// clamped below at α_oci (immediately after a failure) and reset on every
/// failure.  With k = 1 (exponential failures) this degenerates exactly to
/// OCI checkpointing — no harm, no benefit.

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "core/policy/policy.hpp"

namespace lazyckpt::core {

/// iLazy: increasingly lazy checkpoint intervals between failures.
class ILazyPolicy final : public CheckpointPolicy {
 public:
  /// Construct with an explicit Weibull shape, or (default) take the shape
  /// from the context's running estimate.
  explicit ILazyPolicy(std::optional<double> shape = std::nullopt);

  /// Defined inline: this runs once per simulated event, and the engine's
  /// devirtualized fast path instantiates its loop against this final
  /// class, leaving pow() as the decision's only non-trivial cost.
  [[nodiscard]] double next_interval(const PolicyContext& ctx) override {
    return lazy_interval(ctx.alpha_oci_hours, ctx.time_since_failure_hours,
                         effective_shape(ctx));
  }
  [[nodiscard]] std::string name() const override { return "ilazy"; }
  [[nodiscard]] bool is_stateless() const override { return true; }
  [[nodiscard]] PolicyPtr clone() const override;

  /// The explicit shape this policy was constructed with, if any.  Hookless
  /// runs pin the context's shape estimate to config.shape_hint, so
  /// shape().value_or(shape_hint) is the run-constant effective shape — the
  /// batched trial kernel hoists it out of the event loop.
  [[nodiscard]] std::optional<double> shape() const { return shape_; }

  /// Eq. 11 as a pure function: the interval to use when the last failure
  /// was `time_since_failure` hours ago.  Clamped below at alpha_oci.
  /// Requires alpha_oci > 0, shape in (0, 1].
  static double lazy_interval(double alpha_oci_hours,
                              double time_since_failure_hours, double shape) {
    require_positive(alpha_oci_hours, "alpha_oci_hours");
    require(shape > 0.0 && shape <= 1.0, "shape must lie in (0, 1]");
    require_non_negative(time_since_failure_hours,
                         "time_since_failure_hours");
    // Immediately after a failure the paper resets to the OCI; the formula
    // would shrink the interval below OCI for t < alpha_oci, so clamp t.
    const double t = std::max(time_since_failure_hours, alpha_oci_hours);
    return alpha_oci_hours * std::pow(t / alpha_oci_hours, 1.0 - shape);
  }

 private:
  [[nodiscard]] double effective_shape(const PolicyContext& ctx) const {
    const double k = shape_.value_or(ctx.weibull_shape_estimate);
    require(k > 0.0 && k <= 1.0,
            "iLazy requires a Weibull shape estimate in (0, 1]");
    return k;
  }

  std::optional<double> shape_;
};

}  // namespace lazyckpt::core
