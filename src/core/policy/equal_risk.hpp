#pragma once

/// \file equal_risk.hpp
/// \brief Equal-risk interval scheduling — a principled generalization of
/// iLazy to arbitrary inter-arrival distributions.
///
/// iLazy's Eq. 11 inverts the *Weibull* hazard slope.  The equal-risk
/// scheduler derives the same laziness from first principles and for any
/// distribution: pick each interval so that the conditional probability of
/// a failure landing inside it never exceeds the per-interval risk budget
/// the classic exponential-based OCI design accepted:
///
///   P[fail in (t, t+α(t)) | alive at t]  =  1 − e^(−α_oci / MTBF)
///
/// clamped below at α_oci (right after a failure the decreasing hazard is
/// *above* its exponential equivalent, so the budget alone would shrink
/// the interval — the paper's reset-to-OCI rule applies instead).  With a
/// decreasing hazard, later intervals stretch to accumulate the same risk;
/// with exponential failures the conditional risk is memoryless and
/// α(t) ≡ α_oci, recovering OCI checkpointing exactly.  Solved per
/// decision by bisection on the distribution's CDF.

#include <string>

#include "core/policy/policy.hpp"
#include "stats/distribution.hpp"

namespace lazyckpt::core {

/// Equal-conditional-risk intervals under an explicit inter-arrival model.
class EqualRiskPolicy final : public CheckpointPolicy {
 public:
  /// `inter_arrival` is the fitted failure model (any Distribution).
  /// `max_stretch` caps the interval at that multiple of the OCI.
  explicit EqualRiskPolicy(stats::DistributionPtr inter_arrival,
                           double max_stretch = 64.0);

  EqualRiskPolicy(const EqualRiskPolicy& other);
  EqualRiskPolicy& operator=(const EqualRiskPolicy&) = delete;

  [[nodiscard]] double next_interval(const PolicyContext& ctx) override;
  [[nodiscard]] std::string name() const override;
  /// Pure per decision: the bisection only reads the (const) distribution.
  [[nodiscard]] bool is_stateless() const override { return true; }
  [[nodiscard]] PolicyPtr clone() const override;

  /// The interval solving the equal-risk equation at time-since-failure
  /// `t`, exposed for tests.  Always in [alpha_oci, max_stretch*alpha_oci].
  [[nodiscard]] double interval_at(double alpha_oci_hours,
                                   double time_since_failure_hours) const;

 private:
  stats::DistributionPtr inter_arrival_;
  double max_stretch_;
};

}  // namespace lazyckpt::core
