#pragma once

/// \file policy.hpp
/// \brief Checkpoint-interval scheduling policy interface (paper Sec. 5).
///
/// A policy decides, at each scheduling point, how long the application
/// should compute before attempting the next checkpoint, and whether a
/// reached checkpoint boundary should actually be written (Skip).  Policies
/// are driven entirely through the PolicyContext snapshot, so the same
/// implementations run inside the event-driven simulator, the trace-replay
/// harness, and the prototype C/R library.

#include <memory>
#include <string>

namespace lazyckpt::core {

/// Snapshot of everything a policy may consult.  Times in hours.
struct PolicyContext {
  double now_hours = 0.0;                 ///< time since the run started
  double time_since_failure_hours = 0.0;  ///< time since the last failure
                                          ///< (since run start if none yet)
  double alpha_oci_hours = 0.0;           ///< reference OCI estimate
  double checkpoint_time_hours = 0.0;     ///< current β estimate
  double mtbf_estimate_hours = 0.0;       ///< current MTBF estimate
  double weibull_shape_estimate = 1.0;    ///< current shape (k) estimate
  int checkpoints_since_failure = 0;      ///< boundaries reached since the
                                          ///< last failure (written or not)
  int failures_so_far = 0;                ///< failures observed so far
};

/// Abstract checkpoint-interval policy.
class CheckpointPolicy {
 public:
  virtual ~CheckpointPolicy() = default;

  /// Hours of computation to perform before the next checkpoint boundary.
  /// Must return a positive, finite value.
  [[nodiscard]] virtual double next_interval(const PolicyContext& ctx) = 0;

  /// Consulted when a checkpoint boundary is reached: return true to skip
  /// the write (the work since the last completed checkpoint stays at risk
  /// and the application immediately continues computing).  Defined inline
  /// (like the notification hooks below) so that when the engine's fast
  /// path statically binds a final policy class that does not override
  /// them, the calls vanish entirely.
  [[nodiscard]] virtual bool should_skip(const PolicyContext&) {
    return false;
  }

  /// Notification hooks (default: no-op).
  virtual void on_failure(const PolicyContext&) {}
  virtual void on_checkpoint_complete(const PolicyContext&) {}

  /// Stable identifier for reports ("static-oci", "ilazy", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// True when every scheduling call (next_interval, should_skip, on_*) is
  /// a pure function of the PolicyContext — no per-run mutable state is
  /// read or written.  Replica sweeps share a single stateless policy
  /// instance across all trials instead of cloning it per replica, which
  /// also means the calls may run concurrently: an override returning true
  /// promises const-like thread safety for the whole interface.  Defaults
  /// to false (clone per replica), which is always safe.
  [[nodiscard]] virtual bool is_stateless() const { return false; }

  /// Deep copy — each simulation replica clones its own policy instance.
  [[nodiscard]] virtual std::unique_ptr<CheckpointPolicy> clone() const = 0;
};

using PolicyPtr = std::unique_ptr<CheckpointPolicy>;

}  // namespace lazyckpt::core
