#pragma once

/// \file skip.hpp
/// \brief Skip checkpointing (paper Sec. 5, Observation 8, Fig. 19).
///
/// A static, temporal-locality-aware technique: after each failure, exactly
/// one scheduled checkpoint — the n-th boundary since that failure — is
/// skipped.  Skipping a *later* checkpoint (n = 2, 3) is cheap in expected
/// lost work because, with Weibull k < 1 failures, another failure is
/// unlikely that long after the previous one; skipping the *first* saves
/// the most I/O (first boundaries are the most numerous) but risks the most
/// work.  Implemented as a decorator so it composes with any base policy,
/// including iLazy (paper: "Coupled with iLazy, it mitigates the
/// checkpointing overhead more than what iLazy alone can achieve").

#include <string>

#include "core/policy/policy.hpp"

namespace lazyckpt::core {

/// Decorator skipping the `skip_index`-th checkpoint boundary (1-based)
/// after every failure.
class SkipPolicy final : public CheckpointPolicy {
 public:
  /// Wrap `base`; requires base != nullptr and skip_index >= 1.
  SkipPolicy(PolicyPtr base, int skip_index);

  [[nodiscard]] double next_interval(const PolicyContext& ctx) override;
  [[nodiscard]] bool should_skip(const PolicyContext& ctx) override;
  void on_failure(const PolicyContext& ctx) override;
  void on_checkpoint_complete(const PolicyContext& ctx) override;
  [[nodiscard]] std::string name() const override;
  /// The decorator itself keeps no per-run state; stateless iff the base is.
  [[nodiscard]] bool is_stateless() const override {
    return base_->is_stateless();
  }
  [[nodiscard]] PolicyPtr clone() const override;

  [[nodiscard]] int skip_index() const noexcept { return skip_index_; }

 private:
  PolicyPtr base_;
  int skip_index_;
};

}  // namespace lazyckpt::core
