#pragma once

/// \file dynamic_oci.hpp
/// \brief Dynamic OCI (paper Sec. 6.1): recompute the Daly interval from a
/// moving-average MTBF and the currently observed time-to-checkpoint.
///
/// The MTBF and β estimates arrive through the PolicyContext; the engine or
/// the C/R library keeps them current (moving average of failure
/// inter-arrivals from the failure-log agent, observed bandwidth from the
/// I/O-log agent).  The policy itself stays stateless.

#include <string>

#include "core/policy/policy.hpp"

namespace lazyckpt::core {

/// Recomputes α = daly_oci(β_est, MTBF_est) at every scheduling point.
class DynamicOciPolicy final : public CheckpointPolicy {
 public:
  [[nodiscard]] double next_interval(const PolicyContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "dynamic-oci"; }
  [[nodiscard]] bool is_stateless() const override { return true; }
  [[nodiscard]] PolicyPtr clone() const override;
};

}  // namespace lazyckpt::core
