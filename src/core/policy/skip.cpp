#include "core/policy/skip.hpp"

#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace lazyckpt::core {

SkipPolicy::SkipPolicy(PolicyPtr base, int skip_index)
    : base_(std::move(base)), skip_index_(skip_index) {
  require(base_ != nullptr, "SkipPolicy needs a base policy");
  require(skip_index >= 1, "SkipPolicy skip_index must be >= 1");
}

double SkipPolicy::next_interval(const PolicyContext& ctx) {
  return base_->next_interval(ctx);
}

bool SkipPolicy::should_skip(const PolicyContext& ctx) {
  // ctx.checkpoints_since_failure counts boundaries reached since the last
  // failure, *including* the one being decided (1-based at this call).
  if (ctx.checkpoints_since_failure == skip_index_) return true;
  return base_->should_skip(ctx);
}

void SkipPolicy::on_failure(const PolicyContext& ctx) {
  base_->on_failure(ctx);
}

void SkipPolicy::on_checkpoint_complete(const PolicyContext& ctx) {
  base_->on_checkpoint_complete(ctx);
}

std::string SkipPolicy::name() const {
  std::ostringstream out;
  out << "skip-" << skip_index_ << "(" << base_->name() << ")";
  return out.str();
}

PolicyPtr SkipPolicy::clone() const {
  return std::make_unique<SkipPolicy>(base_->clone(), skip_index_);
}

}  // namespace lazyckpt::core
