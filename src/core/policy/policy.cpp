#include "core/policy/policy.hpp"

namespace lazyckpt::core {

bool CheckpointPolicy::should_skip(const PolicyContext&) { return false; }

void CheckpointPolicy::on_failure(const PolicyContext&) {}

void CheckpointPolicy::on_checkpoint_complete(const PolicyContext&) {}

}  // namespace lazyckpt::core
