#include "core/policy/policy.hpp"

// The interface's default implementations (should_skip / on_failure /
// on_checkpoint_complete) live inline in the header so the simulator's
// devirtualized fast path can eliminate the calls for policies that do not
// override them.  This translation unit intentionally defines nothing.
