#include "core/policy/equal_risk.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace lazyckpt::core {

EqualRiskPolicy::EqualRiskPolicy(stats::DistributionPtr inter_arrival,
                                 double max_stretch)
    : inter_arrival_(std::move(inter_arrival)), max_stretch_(max_stretch) {
  require(inter_arrival_ != nullptr, "EqualRiskPolicy needs a distribution");
  require(max_stretch >= 1.0, "EqualRiskPolicy max_stretch must be >= 1");
}

EqualRiskPolicy::EqualRiskPolicy(const EqualRiskPolicy& other)
    : inter_arrival_(other.inter_arrival_->clone()),
      max_stretch_(other.max_stretch_) {}

double EqualRiskPolicy::interval_at(double alpha_oci_hours,
                                    double time_since_failure_hours) const {
  require_positive(alpha_oci_hours, "alpha_oci_hours");
  require_non_negative(time_since_failure_hours, "time_since_failure_hours");

  const double t = time_since_failure_hours;
  // Risk budget: what the exponential-based OCI design accepted per
  // interval at this distribution's MTBF.
  const double target_risk =
      -std::expm1(-alpha_oci_hours / inter_arrival_->mean());

  const double survival = 1.0 - inter_arrival_->cdf(t);
  const double cap = max_stretch_ * alpha_oci_hours;
  if (survival <= 1e-12) return cap;  // deep tail: risk is exhausted

  const auto conditional_risk = [&](double alpha) {
    return (inter_arrival_->cdf(t + alpha) - inter_arrival_->cdf(t)) /
           survival;
  };

  if (conditional_risk(cap) <= target_risk) return cap;
  // Risk is monotone in alpha: bisect for the equal-risk interval.
  double lo = 0.0;
  double hi = cap;
  for (int iteration = 0;
       iteration < 100 && (hi - lo) > 1e-9 * alpha_oci_hours; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (conditional_risk(mid) < target_risk) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Never schedule below the OCI: right after a failure the equation
  // returns alpha_oci exactly; numerical noise should not undercut it.
  return std::max(0.5 * (lo + hi), alpha_oci_hours);
}

double EqualRiskPolicy::next_interval(const PolicyContext& ctx) {
  return interval_at(ctx.alpha_oci_hours, ctx.time_since_failure_hours);
}

std::string EqualRiskPolicy::name() const {
  return "equal-risk(" + inter_arrival_->name() + ")";
}

PolicyPtr EqualRiskPolicy::clone() const {
  return std::make_unique<EqualRiskPolicy>(*this);
}

}  // namespace lazyckpt::core
