#pragma once

/// \file factory.hpp
/// \brief Construct checkpoint policies from compact textual specs.
///
/// Spec grammar (used by examples and the bench harness):
///   "hourly"                — PeriodicPolicy(1.0)
///   "periodic:<hours>"      — PeriodicPolicy(hours)
///   "static-oci"            — StaticOciPolicy
///   "dynamic-oci"           — DynamicOciPolicy
///   "ilazy"                 — ILazyPolicy (shape from context)
///   "ilazy:<k>"             — ILazyPolicy with fixed shape k
///   "bounded-ilazy:<k>"     — BoundedILazyPolicy(k)
///   "linear:<x>"            — LinearIncreasePolicy(x hours)
///   "skip<N>:<base-spec>"   — SkipPolicy over any of the above, e.g.
///                             "skip2:static-oci", "skip1:ilazy:0.6"

#include <string_view>

#include "core/policy/policy.hpp"

namespace lazyckpt::core {

/// Parse `spec` and build the policy.  Throws InvalidArgument on a
/// malformed or unknown spec.
PolicyPtr make_policy(std::string_view spec);

}  // namespace lazyckpt::core
