#pragma once

/// \file periodic.hpp
/// \brief Fixed-interval policies: the naive hourly baseline and static OCI.
///
/// next_interval is defined inline: these are the innermost per-event
/// calls of the simulator, and the engine's devirtualized fast path
/// (sim/engine.cpp) instantiates its loop directly against these final
/// classes so the decisions compile down to loads.

#include <string>

#include "common/error.hpp"
#include "core/policy/policy.hpp"

namespace lazyckpt::core {

/// Checkpoints every `interval_hours` regardless of failures — the paper's
/// "traditional hourly checkpointing" when constructed with 1.0, or any
/// other fixed operating interval for the Fig. 15 sweeps.
class PeriodicPolicy final : public CheckpointPolicy {
 public:
  explicit PeriodicPolicy(double interval_hours);

  [[nodiscard]] double next_interval(const PolicyContext&) override {
    return interval_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool is_stateless() const override { return true; }
  [[nodiscard]] PolicyPtr clone() const override;

  [[nodiscard]] double interval_hours() const noexcept { return interval_; }

 private:
  double interval_;
};

/// Checkpoints at the context's reference OCI (ctx.alpha_oci_hours).  With a
/// fixed context estimate this is the paper's "static OCI" strategy; the
/// engine computes the estimate once from historical MTBF and bandwidth.
class StaticOciPolicy final : public CheckpointPolicy {
 public:
  [[nodiscard]] double next_interval(const PolicyContext& ctx) override {
    require_positive(ctx.alpha_oci_hours, "PolicyContext.alpha_oci_hours");
    return ctx.alpha_oci_hours;
  }
  [[nodiscard]] std::string name() const override { return "static-oci"; }
  [[nodiscard]] bool is_stateless() const override { return true; }
  [[nodiscard]] PolicyPtr clone() const override;
};

}  // namespace lazyckpt::core
