#pragma once

/// \file periodic.hpp
/// \brief Fixed-interval policies: the naive hourly baseline and static OCI.

#include "core/policy/policy.hpp"

namespace lazyckpt::core {

/// Checkpoints every `interval_hours` regardless of failures — the paper's
/// "traditional hourly checkpointing" when constructed with 1.0, or any
/// other fixed operating interval for the Fig. 15 sweeps.
class PeriodicPolicy final : public CheckpointPolicy {
 public:
  explicit PeriodicPolicy(double interval_hours);

  [[nodiscard]] double next_interval(const PolicyContext& ctx) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] PolicyPtr clone() const override;

  [[nodiscard]] double interval_hours() const noexcept { return interval_; }

 private:
  double interval_;
};

/// Checkpoints at the context's reference OCI (ctx.alpha_oci_hours).  With a
/// fixed context estimate this is the paper's "static OCI" strategy; the
/// engine computes the estimate once from historical MTBF and bandwidth.
class StaticOciPolicy final : public CheckpointPolicy {
 public:
  [[nodiscard]] double next_interval(const PolicyContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "static-oci"; }
  [[nodiscard]] PolicyPtr clone() const override;
};

}  // namespace lazyckpt::core
