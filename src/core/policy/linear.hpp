#pragma once

/// \file linear.hpp
/// \brief Linearly increasing checkpoint intervals (paper Fig. 16).
///
/// A tuned alternative to iLazy: the j-th interval since the last failure is
/// α_oci + j·x.  The linear ramp does not track the Weibull hazard slope, so
/// x needs tuning per shape (the paper uses x = 0.10 h for k = 0.6); it
/// loses less work than iLazy but also saves less checkpoint I/O.

#include <string>

#include "core/policy/policy.hpp"

namespace lazyckpt::core {

/// α_j = α_oci + j · step, j = checkpoints since the last failure.
class LinearIncreasePolicy final : public CheckpointPolicy {
 public:
  /// Requires step_hours >= 0.
  explicit LinearIncreasePolicy(double step_hours);

  [[nodiscard]] double next_interval(const PolicyContext& ctx) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool is_stateless() const override { return true; }
  [[nodiscard]] PolicyPtr clone() const override;

 private:
  double step_;
};

}  // namespace lazyckpt::core
