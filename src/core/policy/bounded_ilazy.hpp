#pragma once

/// \file bounded_ilazy.hpp
/// \brief iLazy with the Observation-9 no-performance-loss cap.
///
/// Identical to iLazy except every proposed interval is clamped by
/// core::max_lazy_interval, computed against the Weibull inter-arrival
/// model implied by the context's MTBF and shape estimates.  This trades a
/// portion of the I/O savings for a guarantee that the expected extra lost
/// work never exceeds the expected checkpoint cost saved.

#include <string>

#include "core/model/bounds.hpp"
#include "core/policy/policy.hpp"

namespace lazyckpt::core {

/// Capped iLazy (paper Fig. 21).
class BoundedILazyPolicy final : public CheckpointPolicy {
 public:
  /// `shape` fixes the Weibull shape; `max_stretch` bounds the cap search.
  explicit BoundedILazyPolicy(double shape, double max_stretch = 64.0);

  [[nodiscard]] double next_interval(const PolicyContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "bounded-ilazy"; }
  [[nodiscard]] bool is_stateless() const override { return true; }
  [[nodiscard]] PolicyPtr clone() const override;

 private:
  double shape_;
  double max_stretch_;
};

}  // namespace lazyckpt::core
