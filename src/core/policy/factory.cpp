#include "core/policy/factory.hpp"

#include <charconv>
#include <string>

#include "common/error.hpp"
#include "core/policy/bounded_ilazy.hpp"
#include "core/policy/dynamic_oci.hpp"
#include "core/policy/ilazy.hpp"
#include "core/policy/linear.hpp"
#include "core/policy/periodic.hpp"
#include "core/policy/skip.hpp"

namespace lazyckpt::core {
namespace {

double parse_number(std::string_view text, std::string_view spec) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw InvalidArgument("malformed number '" + std::string(text) +
                          "' in policy spec '" + std::string(spec) + "'");
  }
  return value;
}

}  // namespace

PolicyPtr make_policy(std::string_view spec) {
  require(!spec.empty(), "empty policy spec");

  // skip<N>:<base-spec>
  if (spec.starts_with("skip")) {
    const std::size_t colon = spec.find(':');
    require(colon != std::string_view::npos && colon > 4,
            "skip spec must look like 'skip<N>:<base>': " + std::string(spec));
    const int index =
        static_cast<int>(parse_number(spec.substr(4, colon - 4), spec));
    return std::make_unique<SkipPolicy>(make_policy(spec.substr(colon + 1)),
                                        index);
  }

  if (spec == "hourly") return std::make_unique<PeriodicPolicy>(1.0);
  if (spec == "static-oci") return std::make_unique<StaticOciPolicy>();
  if (spec == "dynamic-oci") return std::make_unique<DynamicOciPolicy>();
  if (spec == "ilazy") return std::make_unique<ILazyPolicy>();

  if (spec.starts_with("periodic:")) {
    return std::make_unique<PeriodicPolicy>(
        parse_number(spec.substr(9), spec));
  }
  if (spec.starts_with("ilazy:")) {
    return std::make_unique<ILazyPolicy>(parse_number(spec.substr(6), spec));
  }
  if (spec.starts_with("bounded-ilazy:")) {
    return std::make_unique<BoundedILazyPolicy>(
        parse_number(spec.substr(14), spec));
  }
  if (spec.starts_with("linear:")) {
    return std::make_unique<LinearIncreasePolicy>(
        parse_number(spec.substr(7), spec));
  }

  throw InvalidArgument("unknown policy spec: " + std::string(spec));
}

}  // namespace lazyckpt::core
