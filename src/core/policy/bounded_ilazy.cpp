#include "core/policy/bounded_ilazy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/policy/ilazy.hpp"
#include "stats/weibull.hpp"

namespace lazyckpt::core {

BoundedILazyPolicy::BoundedILazyPolicy(double shape, double max_stretch)
    : shape_(shape), max_stretch_(max_stretch) {
  require(shape > 0.0 && shape <= 1.0,
          "BoundedILazyPolicy shape must lie in (0, 1]");
  require(max_stretch >= 1.0, "BoundedILazyPolicy max_stretch must be >= 1");
}

double BoundedILazyPolicy::next_interval(const PolicyContext& ctx) {
  const double proposed = ILazyPolicy::lazy_interval(
      ctx.alpha_oci_hours, ctx.time_since_failure_hours, shape_);

  require_positive(ctx.mtbf_estimate_hours,
                   "PolicyContext.mtbf_estimate_hours");
  const auto weibull =
      stats::Weibull::from_mtbf_and_shape(ctx.mtbf_estimate_hours, shape_);

  IntervalBoundParams params;
  params.alpha_oci_hours = ctx.alpha_oci_hours;
  params.checkpoint_time_hours = ctx.checkpoint_time_hours;
  params.max_stretch = max_stretch_;
  const double cap =
      max_lazy_interval(weibull, ctx.time_since_failure_hours, params);
  return std::min(proposed, cap);
}

PolicyPtr BoundedILazyPolicy::clone() const {
  return std::make_unique<BoundedILazyPolicy>(*this);
}

}  // namespace lazyckpt::core
