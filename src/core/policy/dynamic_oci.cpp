#include "core/policy/dynamic_oci.hpp"

#include "common/error.hpp"
#include "core/model/oci.hpp"

namespace lazyckpt::core {

double DynamicOciPolicy::next_interval(const PolicyContext& ctx) {
  require_positive(ctx.checkpoint_time_hours,
                   "PolicyContext.checkpoint_time_hours");
  require_positive(ctx.mtbf_estimate_hours,
                   "PolicyContext.mtbf_estimate_hours");
  return daly_oci(ctx.checkpoint_time_hours, ctx.mtbf_estimate_hours);
}

PolicyPtr DynamicOciPolicy::clone() const {
  return std::make_unique<DynamicOciPolicy>(*this);
}

}  // namespace lazyckpt::core
