#include "core/policy/periodic.hpp"

#include <sstream>

#include "common/error.hpp"

namespace lazyckpt::core {

PeriodicPolicy::PeriodicPolicy(double interval_hours)
    : interval_(interval_hours) {
  require_positive(interval_hours, "PeriodicPolicy interval");
}

std::string PeriodicPolicy::name() const {
  std::ostringstream out;
  out << "periodic(" << interval_ << "h)";
  return out.str();
}

PolicyPtr PeriodicPolicy::clone() const {
  return std::make_unique<PeriodicPolicy>(*this);
}

PolicyPtr StaticOciPolicy::clone() const {
  return std::make_unique<StaticOciPolicy>(*this);
}

}  // namespace lazyckpt::core
