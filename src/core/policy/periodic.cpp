#include "core/policy/periodic.hpp"

#include <sstream>

#include "common/error.hpp"

namespace lazyckpt::core {

PeriodicPolicy::PeriodicPolicy(double interval_hours)
    : interval_(interval_hours) {
  require_positive(interval_hours, "PeriodicPolicy interval");
}

double PeriodicPolicy::next_interval(const PolicyContext&) {
  return interval_;
}

std::string PeriodicPolicy::name() const {
  std::ostringstream out;
  out << "periodic(" << interval_ << "h)";
  return out.str();
}

PolicyPtr PeriodicPolicy::clone() const {
  return std::make_unique<PeriodicPolicy>(*this);
}

double StaticOciPolicy::next_interval(const PolicyContext& ctx) {
  require_positive(ctx.alpha_oci_hours, "PolicyContext.alpha_oci_hours");
  return ctx.alpha_oci_hours;
}

PolicyPtr StaticOciPolicy::clone() const {
  return std::make_unique<StaticOciPolicy>(*this);
}

}  // namespace lazyckpt::core
