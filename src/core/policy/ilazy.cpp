#include "core/policy/ilazy.hpp"


#include "common/error.hpp"

namespace lazyckpt::core {

ILazyPolicy::ILazyPolicy(std::optional<double> shape) : shape_(shape) {
  if (shape_) {
    require(*shape_ > 0.0 && *shape_ <= 1.0,
            "ILazyPolicy shape must lie in (0, 1]");
  }
}

PolicyPtr ILazyPolicy::clone() const {
  return std::make_unique<ILazyPolicy>(*this);
}

}  // namespace lazyckpt::core
