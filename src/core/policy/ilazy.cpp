#include "core/policy/ilazy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lazyckpt::core {

ILazyPolicy::ILazyPolicy(std::optional<double> shape) : shape_(shape) {
  if (shape_) {
    require(*shape_ > 0.0 && *shape_ <= 1.0,
            "ILazyPolicy shape must lie in (0, 1]");
  }
}

double ILazyPolicy::lazy_interval(double alpha_oci_hours,
                                  double time_since_failure_hours,
                                  double shape) {
  require_positive(alpha_oci_hours, "alpha_oci_hours");
  require(shape > 0.0 && shape <= 1.0, "shape must lie in (0, 1]");
  require_non_negative(time_since_failure_hours, "time_since_failure_hours");
  // Immediately after a failure the paper resets to the OCI; the formula
  // would shrink the interval below OCI for t < alpha_oci, so clamp t.
  const double t = std::max(time_since_failure_hours, alpha_oci_hours);
  return alpha_oci_hours *
         std::pow(t / alpha_oci_hours, 1.0 - shape);
}

double ILazyPolicy::effective_shape(const PolicyContext& ctx) const {
  const double k = shape_.value_or(ctx.weibull_shape_estimate);
  require(k > 0.0 && k <= 1.0,
          "iLazy requires a Weibull shape estimate in (0, 1]");
  return k;
}

double ILazyPolicy::next_interval(const PolicyContext& ctx) {
  return lazy_interval(ctx.alpha_oci_hours, ctx.time_since_failure_hours,
                       effective_shape(ctx));
}

PolicyPtr ILazyPolicy::clone() const {
  return std::make_unique<ILazyPolicy>(*this);
}

}  // namespace lazyckpt::core
