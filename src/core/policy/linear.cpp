#include "core/policy/linear.hpp"

#include <sstream>

#include "common/error.hpp"

namespace lazyckpt::core {

LinearIncreasePolicy::LinearIncreasePolicy(double step_hours)
    : step_(step_hours) {
  require_non_negative(step_hours, "LinearIncreasePolicy step");
}

double LinearIncreasePolicy::next_interval(const PolicyContext& ctx) {
  require_positive(ctx.alpha_oci_hours, "PolicyContext.alpha_oci_hours");
  return ctx.alpha_oci_hours +
         step_ * static_cast<double>(ctx.checkpoints_since_failure);
}

std::string LinearIncreasePolicy::name() const {
  std::ostringstream out;
  out << "linear(x=" << step_ << "h)";
  return out.str();
}

PolicyPtr LinearIncreasePolicy::clone() const {
  return std::make_unique<LinearIncreasePolicy>(*this);
}

}  // namespace lazyckpt::core
