#include "obs/clock.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>

namespace lazyckpt::obs {

namespace {

// The tracer timestamps events from arbitrary threads, so the override
// pointer is atomic; null means "use the default SteadyClock".
std::atomic<const Clock*> g_override{nullptr};

TimeNs steady_now_ns() {
  // src/obs/clock.* is the one place outside bench/ where lazyckpt-lint
  // permits the steady_clock determinism token (classify_path allowlist).
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<TimeNs>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace

SteadyClock::SteadyClock() : epoch_ns_(steady_now_ns()) {}

TimeNs SteadyClock::now_ns() const { return steady_now_ns() - epoch_ns_; }

const Clock& process_clock() noexcept {
  if (const Clock* override_clock =
          g_override.load(std::memory_order_acquire);
      override_clock != nullptr) {
    return *override_clock;
  }
  // Function-local statics: epoch fixed at first telemetry read, init is
  // thread-safe, and no global constructor runs in untraced processes.
  // LAZYCKPT_FAKE_CLOCK=<ns> pins the default source to a constant — the
  // shell-level spelling of ScopedClockOverride(FakeClock), used to make
  // `lazyckpt-run --report` output byte-identical across reruns.
  static const Clock* const default_clock = []() -> const Clock* {
    if (const char* env = std::getenv("LAZYCKPT_FAKE_CLOCK");
        env != nullptr && *env != '\0') {
      static FakeClock fake;
      fake.set_ns(static_cast<TimeNs>(std::strtoull(env, nullptr, 10)));
      return &fake;
    }
    static const SteadyClock steady;
    return &steady;
  }();
  return *default_clock;
}

ScopedClockOverride::ScopedClockOverride(const Clock& clock) noexcept
    : previous_(g_override.exchange(&clock, std::memory_order_acq_rel)) {}

ScopedClockOverride::~ScopedClockOverride() {
  g_override.store(previous_, std::memory_order_release);
}

}  // namespace lazyckpt::obs
