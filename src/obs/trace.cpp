#include "obs/trace.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string_view>

#include "obs/metrics.hpp"

namespace lazyckpt::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// Owned by the global registry, appended to only by its owning thread.
/// Buffers outlive their threads so worker events survive pool teardown.
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& registry() {
  static BufferRegistry instance;
  return instance;
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    BufferRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    raw->tid = static_cast<std::uint32_t>(reg.buffers.size());
    raw->events.reserve(1024);
    reg.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

/// `LAZYCKPT_TRACE=1 ctest` support: any process linking obs starts with
/// recording enabled when the variable is set, so golden-master and
/// determinism suites run their instrumented paths without per-test
/// wiring.  File writing stays opt-in (TraceEnvSession).
struct EnvEnable {
  EnvEnable() {
    const char* env = std::getenv("LAZYCKPT_TRACE");
    if (env != nullptr && *env != '\0') detail::g_enabled.store(true);
  }
};
const EnvEnable g_env_enable;

void append_escaped(std::string& out, const char* text) {
  for (const char* c = text; *c != '\0'; ++c) {
    if (*c == '"' || *c == '\\') out.push_back('\\');
    out.push_back(*c);
  }
}

/// Microseconds with fixed 3-decimal nanosecond remainder — stable bytes
/// for a given TimeNs, pinned by the fake-clock golden test.
void append_timestamp_us(std::string& out, TimeNs ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ts_ns / 1000),
                static_cast<unsigned long long>(ts_ns % 1000));
  out += buf;
}

}  // namespace

namespace detail {

TraceEvent make_event(const char* name, EventKind kind, std::uint32_t tid) {
  TraceEvent event;
  event.name = name;
  event.kind = kind;
  event.tid = tid;
  event.ts_ns = process_clock().now_ns();
  return event;
}

void record_event(const char* name, EventKind kind, double value) {
  ThreadBuffer& buffer = thread_buffer();
  TraceEvent event = make_event(name, kind, buffer.tid);
  event.value = value;
  buffer.events.push_back(std::move(event));
}

void record_event_args(const char* name, EventKind kind,
                       std::vector<TraceArg> args) {
  ThreadBuffer& buffer = thread_buffer();
  TraceEvent event = make_event(name, kind, buffer.tid);
  event.args = std::move(args);
  buffer.events.push_back(std::move(event));
}

void record_flow(const char* name, EventKind kind, std::uint64_t flow) {
  ThreadBuffer& buffer = thread_buffer();
  TraceEvent event = make_event(name, kind, buffer.tid);
  event.flow = flow;
  buffer.events.push_back(std::move(event));
}

}  // namespace detail

namespace {

// Flow-id state: a monotone mint plus the currently published id.  Both
// are telemetry-only — they never feed results, so cross-thread ordering
// of mints does not matter.
std::atomic<std::uint64_t> g_next_flow_id{1};
std::atomic<std::uint64_t> g_current_flow{0};

}  // namespace

FlowId new_flow_id() noexcept {
  return g_next_flow_id.fetch_add(1, std::memory_order_relaxed);
}

FlowId current_flow() noexcept {
  return g_current_flow.load(std::memory_order_relaxed);
}

ScopedFlow::ScopedFlow(const char* name, FlowId id)
    : name_(name),
      id_(id),
      previous_(g_current_flow.load(std::memory_order_relaxed)) {
  if (id_ == 0) return;
  flow_begin(name_, id_);
  g_current_flow.store(id_, std::memory_order_relaxed);
}

ScopedFlow::~ScopedFlow() {
  if (id_ == 0) return;
  flow_end(name_, id_);
  g_current_flow.store(previous_, std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void record_begin(const char* name) {
  detail::record_event(name, EventKind::kBegin, 0.0);
}

void record_begin(const char* name, std::vector<TraceArg> args) {
  detail::record_event_args(name, EventKind::kBegin, std::move(args));
}

void record_end(const char* name) {
  detail::record_event(name, EventKind::kEnd, 0.0);
}

void record_end(const char* name, std::vector<TraceArg> args) {
  detail::record_event_args(name, EventKind::kEnd, std::move(args));
}

std::vector<TraceEvent> drain_events() {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const auto& buffer : reg.buffers) total += buffer->events.size();
  out.reserve(total);
  for (const auto& buffer : reg.buffers) {
    out.insert(out.end(), std::make_move_iterator(buffer->events.begin()),
               std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
  }
  return out;
}

std::vector<TraceEvent> snapshot_events() {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const auto& buffer : reg.buffers) total += buffer->events.size();
  out.reserve(total);
  for (const auto& buffer : reg.buffers) {
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

std::string render_chrome_trace(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(64 + events.size() * 96);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out += "{\"name\": \"";
    append_escaped(out, event.name);
    out += "\", \"cat\": \"lazyckpt\", \"ph\": \"";
    switch (event.kind) {
      case EventKind::kBegin:
        out += 'B';
        break;
      case EventKind::kEnd:
        out += 'E';
        break;
      case EventKind::kInstant:
        out += 'i';
        break;
      case EventKind::kCounter:
        out += 'C';
        break;
      case EventKind::kFlowBegin:
        out += 's';
        break;
      case EventKind::kFlowStep:
        out += 't';
        break;
      case EventKind::kFlowEnd:
        out += 'f';
        break;
    }
    out += "\", \"pid\": 1, \"tid\": ";
    out += std::to_string(event.tid);
    out += ", \"ts\": ";
    append_timestamp_us(out, event.ts_ns);
    if (event.kind == EventKind::kInstant) {
      out += ", \"s\": \"t\"";  // thread-scoped instant
    } else if (event.kind == EventKind::kCounter) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", event.value);
      out += ", \"args\": {\"value\": ";
      out += buf;
      out += "}";
    } else if (event.kind == EventKind::kFlowBegin ||
               event.kind == EventKind::kFlowStep ||
               event.kind == EventKind::kFlowEnd) {
      out += ", \"id\": ";
      out += std::to_string(event.flow);
      // Bind the flow end to the enclosing slice, not the next one, so
      // Perfetto draws the arrow into the span that consumed the request.
      if (event.kind == EventKind::kFlowEnd) out += ", \"bp\": \"e\"";
    } else if (!event.args.empty()) {
      out += ", \"args\": {";
      for (std::size_t a = 0; a < event.args.size(); ++a) {
        const TraceArg& arg = event.args[a];
        if (a > 0) out += ", ";
        out += '"';
        append_escaped(out, arg.key);
        out += "\": ";
        if (arg.is_number) {
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%.17g", arg.number);
          out += buf;
        } else {
          out += '"';
          append_escaped(out, arg.text.c_str());
          out += '"';
        }
      }
      out += "}";
    }
    out += "}";
    if (i + 1 < events.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

bool write_chrome_trace_file(const std::string& path) {
  const std::string json = render_chrome_trace(drain_events());
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), out) == json.size();
  std::fclose(out);
  if (!ok) std::remove(path.c_str());
  return ok;
}

void reset_trace_buffers() {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buffer : reg.buffers) buffer->events.clear();
}

std::size_t buffered_event_count() {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t total = 0;
  for (const auto& buffer : reg.buffers) total += buffer->events.size();
  return total;
}

TraceEnvSession::TraceEnvSession() {
  // Force the buffer registry (and the metrics registry, which snapshot
  // emitters read) into existence NOW, inside this constructor: a
  // function-local static completes construction before this object does,
  // so it is destroyed after ~TraceEnvSession and the end-of-process
  // flush never touches a dead registry.  Without this the registry would
  // first be constructed at the first recorded event — inside main, after
  // this pre-main object — and be torn down before the flush.
  (void)registry();
  (void)metrics();

  const char* env = std::getenv("LAZYCKPT_TRACE");
  if (env == nullptr || *env == '\0') return;
  set_enabled(true);
  // "1" means record-only (the ctest convenience spelling); anything else
  // is the output path.
  if (std::string_view(env) != "1") path_ = env;
}

TraceEnvSession::~TraceEnvSession() {
  if (path_.empty()) return;
  if (write_chrome_trace_file(path_)) {
    std::fprintf(stderr, "lazyckpt: wrote trace to %s\n", path_.c_str());
  } else {
    std::fprintf(stderr, "lazyckpt: FAILED to write trace to %s\n",
                 path_.c_str());
  }
}

}  // namespace lazyckpt::obs
