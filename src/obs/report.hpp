#pragma once

/// \file report.hpp
/// \brief Deterministic run reports (DESIGN.md §5f): one canonical JSON
/// document per run — metrics snapshot, per-span self-time rollup, cache
/// stats, machine block — wired as `lazyckpt-run --report <path>`.
///
/// Rendering is a pure function of its inputs: fixed key order, name- or
/// self-time-ordered listings, fixed number formatting.  Under a FakeClock
/// (ScopedClockOverride in tests, LAZYCKPT_FAKE_CLOCK=<ns> from a shell)
/// the same run therefore produces byte-identical reports, which the
/// golden test pins.  Bump kRunReportSchemaVersion whenever a key is
/// added, removed, or reordered (EXPERIMENTS.md records the history).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lazyckpt::obs {

/// Version of the report document layout.
inline constexpr int kRunReportSchemaVersion = 1;

/// Everything a report renders.  Callers assemble this explicitly — the
/// renderer reads no globals, which is what makes the output testable
/// byte-for-byte.
struct RunReportInputs {
  std::string tool;                     ///< e.g. "lazyckpt-run"
  std::vector<std::string> scenarios;   ///< canonical names, in run order
  /// Machine block: key → pre-rendered JSON value (caller quotes strings),
  /// emitted in the given order.
  std::vector<std::pair<std::string, std::string>> machine;
  MetricsSnapshot metrics;              ///< obs::metrics().snapshot()
  std::vector<TraceEvent> events;       ///< obs::snapshot_events()
  bool has_cache = false;               ///< emit the "cache" block
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bytes_read = 0;
  std::uint64_t cache_bytes_written = 0;
  std::uint64_t cache_evictions = 0;
};

/// Aggregated B/E pairs for one span name, in integer nanoseconds (no
/// float accumulation, so the rollup itself is exact).
struct SpanRollup {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< inclusive
  std::uint64_t self_ns = 0;   ///< total minus time in child spans
};

/// Aggregate complete spans per name (per-thread stacks, child time
/// attributed to the child).  Sorted by self time descending, then name —
/// deterministic for a given event sequence.
[[nodiscard]] std::vector<SpanRollup> rollup_spans(
    const std::vector<TraceEvent>& events);

/// Render the canonical report document.  Always ends with a newline.
[[nodiscard]] std::string render_run_report(const RunReportInputs& inputs);

/// render_run_report + write to `path`.  Returns false (leaving no partial
/// file behind, best effort) when the file cannot be written.
bool write_run_report_file(const RunReportInputs& inputs,
                           const std::string& path);

}  // namespace lazyckpt::obs
