#pragma once

/// \file clock.hpp
/// \brief The one approved wall-clock shim (DESIGN.md §5f).
///
/// The determinism contract bans wall-clock reads from result paths, and
/// lazyckpt-lint enforces the ban at the token level — steady_clock is a
/// `determinism` token everywhere except bench/ and this module.  All
/// telemetry timestamps therefore flow through obs::Clock: production code
/// reads the process clock (a steady_clock-backed singleton implemented
/// only in src/obs/clock.cpp), and tests install a FakeClock via
/// ScopedClockOverride to make trace output byte-reproducible.
///
/// Telemetry *observes* time; it never feeds a simulation decision, a
/// policy input, or any golden-mastered byte.  That is what keeps the shim
/// compatible with the bit-identical-results guarantee.

#include <cstdint>

namespace lazyckpt::obs {

/// Monotonic nanoseconds since an arbitrary per-clock epoch.
using TimeNs = std::uint64_t;

/// Abstract time source for all observability timestamps.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimeNs now_ns() const = 0;
};

/// Wall-clock time measured from construction.  The only type in the tree
/// allowed to touch std::chrono::steady_clock outside bench/ (allowlisted
/// in tools/lint as src/obs/clock.*).
class SteadyClock final : public Clock {
 public:
  SteadyClock();
  [[nodiscard]] TimeNs now_ns() const override;

 private:
  TimeNs epoch_ns_ = 0;  ///< raw steady_clock reading at construction
};

/// Manually advanced clock for deterministic telemetry tests: a trace
/// recorded under a FakeClock serializes to exactly reproducible JSON.
class FakeClock final : public Clock {
 public:
  [[nodiscard]] TimeNs now_ns() const override { return now_ns_; }

  /// Advance by `delta_ns`.
  void advance_ns(TimeNs delta_ns) noexcept { now_ns_ += delta_ns; }

  /// Jump to an absolute time.  Callers own monotonicity; the tracer never
  /// requires it (Chrome's viewer tolerates equal timestamps).
  void set_ns(TimeNs now_ns) noexcept { now_ns_ = now_ns; }

 private:
  TimeNs now_ns_ = 0;
};

/// The process clock every trace event and timed metric reads.  Defaults
/// to a SteadyClock constructed on first use; an installed override (below)
/// wins.  Thread-safe.
[[nodiscard]] const Clock& process_clock() noexcept;

/// Install `clock` as the process clock for this scope (tests only; not
/// meant to nest across threads).  Restores the previous source on
/// destruction.  `clock` must outlive the override.
class ScopedClockOverride {
 public:
  explicit ScopedClockOverride(const Clock& clock) noexcept;
  ~ScopedClockOverride();
  ScopedClockOverride(const ScopedClockOverride&) = delete;
  ScopedClockOverride& operator=(const ScopedClockOverride&) = delete;

 private:
  const Clock* previous_;
};

}  // namespace lazyckpt::obs
