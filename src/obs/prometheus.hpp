#pragma once

/// \file prometheus.hpp
/// \brief Prometheus text-exposition rendering of a metrics snapshot
/// (DESIGN.md §5f) — the `/stats` payload a future lazyckpt-serve exposes.
///
/// Output is deterministic for a given snapshot: one `# TYPE` comment plus
/// its sample lines per instrument, in snapshot (lexicographic name)
/// order.  Metric names are mangled to the Prometheus grammar: the
/// registry's lowercase dot-separated names (`cache.hits`) become
/// underscore-separated names under a `lazyckpt_` prefix
/// (`lazyckpt_cache_hits`).  Histograms expand to the conventional
/// `_bucket{le="..."}` / `_sum` / `_count` series with cumulative bucket
/// counts and a trailing `le="+Inf"` bucket.

#include <string>

#include "obs/metrics.hpp"

namespace lazyckpt::obs {

/// Render `snapshot` in Prometheus text exposition format (version 0.0.4).
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

}  // namespace lazyckpt::obs
