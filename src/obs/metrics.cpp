#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace lazyckpt::obs {

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      counts_(new std::atomic<std::uint64_t>[upper_bounds.size() + 1]) {
  std::sort(bounds_.begin(), bounds_.end());
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  std::size_t bucket = bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Histogram::total() const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    sum += counts_[i].load(std::memory_order_relaxed);
  }
  return sum;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::to_json(const std::string& indent) const {
  std::string out = "{";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const MetricValue& entry = entries[i];
    out += i == 0 ? "\n" : ",\n";
    out += indent;
    out += "  \"";
    out += entry.name;  // instrument names are plain identifiers
    out += "\": ";
    switch (entry.kind) {
      case MetricValue::Kind::kCounter:
        out += std::to_string(entry.count);
        break;
      case MetricValue::Kind::kGauge:
        append_double(out, entry.value);
        break;
      case MetricValue::Kind::kHistogram: {
        out += "{\"buckets\": [";
        for (std::size_t b = 0; b < entry.bucket_bounds.size(); ++b) {
          if (b > 0) out += ", ";
          append_double(out, entry.bucket_bounds[b]);
        }
        out += "], \"counts\": [";
        for (std::size_t b = 0; b < entry.bucket_counts.size(); ++b) {
          if (b > 0) out += ", ";
          out += std::to_string(entry.bucket_counts[b]);
        }
        out += "]}";
        break;
      }
    }
  }
  out += entries.empty() ? "}" : "\n" + indent + "}";
  return out;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.entries.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  // The three maps are each name-ordered; a final stable sort by name
  // merges them into one deterministic listing.
  for (const auto& [name, counter] : counters_) {
    MetricValue entry;
    entry.name = name;
    entry.kind = MetricValue::Kind::kCounter;
    entry.count = counter->value();
    snap.entries.push_back(std::move(entry));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricValue entry;
    entry.name = name;
    entry.kind = MetricValue::Kind::kGauge;
    entry.value = gauge->value();
    snap.entries.push_back(std::move(entry));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricValue entry;
    entry.name = name;
    entry.kind = MetricValue::Kind::kHistogram;
    entry.count = histogram->total();
    entry.sum = histogram->sum();
    entry.bucket_bounds = histogram->bounds();
    entry.bucket_counts = histogram->counts();
    snap.entries.push_back(std::move(entry));
  }
  std::stable_sort(snap.entries.begin(), snap.entries.end(),
                   [](const MetricValue& a, const MetricValue& b) {
                     return a.name < b.name;
                   });
  return snap;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

Registry& metrics() {
  static Registry instance;
  return instance;
}

}  // namespace lazyckpt::obs
