#include "obs/progress.hpp"

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"

namespace lazyckpt::obs {

ProgressTicker::ProgressTicker(Options options)
    : out_(options.out != nullptr ? options.out : stderr),
      interval_ms_(options.interval_ms > 0 ? options.interval_ms : 500) {
  thread_ = std::thread([this] { run(); });
}

ProgressTicker::~ProgressTicker() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void ProgressTicker::begin(std::string label, std::uint64_t total,
                           const char* gauge_name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  label_ = std::move(label);
  total_ = total;
  gauge_name_ = gauge_name;
  start_ns_ = process_clock().now_ns();
  active_ = true;
  // A fresh task starts from zero even if a previous run left the gauge
  // at its old final value.  Writing a gauge is telemetry-to-telemetry;
  // no result path reads it.
  metrics().gauge(gauge_name).set(0.0);
}

void ProgressTicker::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) return;
  active_ = false;
  const std::uint64_t done = static_cast<std::uint64_t>(
      metrics().gauge(gauge_name_).value());
  const TimeNs elapsed_ns = process_clock().now_ns() - start_ns_;
  std::fprintf(out_, "lazyckpt: %s done %llu/%llu replicas in %.1fs\n",
               label_.c_str(), static_cast<unsigned long long>(done),
               static_cast<unsigned long long>(total_),
               static_cast<double>(elapsed_ns) / 1e9);
  std::fflush(out_);
}

void ProgressTicker::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_));
    if (stop_) return;
    if (active_) tick();
  }
}

void ProgressTicker::tick() {
  // Called with mutex_ held.
  const std::uint64_t done = static_cast<std::uint64_t>(
      metrics().gauge(gauge_name_).value());
  const TimeNs elapsed_ns = process_clock().now_ns() - start_ns_;
  const double elapsed_s = static_cast<double>(elapsed_ns) / 1e9;
  if (elapsed_s <= 0.0) {
    // Fake-clock runs (LAZYCKPT_FAKE_CLOCK) have no elapsed time to rate
    // against; stay quiet rather than print a meaningless line.
    return;
  }
  const double rate = static_cast<double>(done) / elapsed_s;
  if (rate > 0.0 && done < total_) {
    const double eta_s = static_cast<double>(total_ - done) / rate;
    std::fprintf(out_,
                 "lazyckpt: %s %llu/%llu replicas | %.1f/s | ETA %.0fs\n",
                 label_.c_str(), static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(total_), rate, eta_s);
  } else {
    std::fprintf(out_, "lazyckpt: %s %llu/%llu replicas\n", label_.c_str(),
                 static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(total_));
  }
  std::fflush(out_);
}

}  // namespace lazyckpt::obs
