#pragma once

/// \file trace.hpp
/// \brief Structured tracing: scoped spans (with key=value arguments),
/// instants, counter samples, and cross-thread flow events, buffered per
/// thread and exported as Chrome trace_event / Perfetto JSON
/// (DESIGN.md §5f).
///
/// Contract ("observe, never perturb"): recording reads the obs clock and
/// appends to a thread-local buffer — it never touches RNG streams, policy
/// state, or any value that feeds simulation results, so every golden
/// master stays bit-identical whether tracing is on or off.  With tracing
/// disabled, each instrumentation site costs one relaxed load of a cold
/// atomic bool and a predictable branch.
///
/// Concurrency model: each thread appends to its own buffer (no locks or
/// atomics on the recording path beyond the enabled flag); the global
/// registry of buffers is touched only on a thread's first event and by
/// drain/serialize/reset.  Draining is NOT safe concurrently with
/// recording — flush after joining workers (the bench harness flushes
/// after main returns; the parallel pool joins its threads per region).
///
/// Event names and argument keys must be string literals (or otherwise
/// static storage): the recorder stores the pointer, not a copy.  Argument
/// *values* may be dynamic (scenario names); they are copied.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.hpp"

namespace lazyckpt::obs {

/// What a trace event marks.  Serialized phases: kBegin→"B", kEnd→"E",
/// kInstant→"i", kCounter→"C", kFlowBegin→"s", kFlowStep→"t",
/// kFlowEnd→"f".
enum class EventKind : std::uint8_t {
  kBegin,
  kEnd,
  kInstant,
  kCounter,
  kFlowBegin,
  kFlowStep,
  kFlowEnd,
};

/// One key=value span argument.  Keys point at static storage (like event
/// names); string values are owned copies so dynamic data (scenario names)
/// is safe to attach.
struct TraceArg {
  const char* key = nullptr;
  bool is_number = false;
  double number = 0.0;
  std::string text;

  [[nodiscard]] static TraceArg num(const char* key, double value) {
    TraceArg arg;
    arg.key = key;
    arg.is_number = true;
    arg.number = value;
    return arg;
  }
  [[nodiscard]] static TraceArg str(const char* key, std::string value) {
    TraceArg arg;
    arg.key = key;
    arg.text = std::move(value);
    return arg;
  }
};

namespace detail {
// Cold flag read by every instrumentation site.  Off by default; flipped
// by set_enabled(), or at load time when LAZYCKPT_TRACE is set in the
// environment (see trace.cpp), so test binaries exercise the instrumented
// paths under `LAZYCKPT_TRACE=1 ctest` without any per-test wiring.
extern std::atomic<bool> g_enabled;

// Out-of-line slow paths: append to the calling thread's buffer.
void record_event(const char* name, EventKind kind, double value);
void record_event_args(const char* name, EventKind kind,
                       std::vector<TraceArg> args);
void record_flow(const char* name, EventKind kind, std::uint64_t flow);
}  // namespace detail

/// True when telemetry (tracing and metrics) is recording.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turn telemetry on or off process-wide.
void set_enabled(bool on) noexcept;

/// One recorded event.  `name` points at static storage.
struct TraceEvent {
  const char* name = nullptr;
  EventKind kind = EventKind::kInstant;
  std::uint32_t tid = 0;        ///< recording thread (registration order)
  TimeNs ts_ns = 0;             ///< obs::process_clock() at record time
  double value = 0.0;           ///< kCounter sample value
  std::uint64_t flow = 0;       ///< kFlow* correlation id (0 = none)
  std::vector<TraceArg> args;   ///< kBegin/kEnd key=value arguments
};

/// Record a begin/end pair manually.  Prefer TraceSpan.
void record_begin(const char* name);
void record_begin(const char* name, std::vector<TraceArg> args);
void record_end(const char* name);
void record_end(const char* name, std::vector<TraceArg> args);

/// Record a point event (progress heartbeat, phase marker).
inline void instant(const char* name) {
  if (enabled()) detail::record_event(name, EventKind::kInstant, 0.0);
}

/// Record a counter sample (rendered as a track in the trace viewer).
inline void counter(const char* name, double value) {
  if (enabled()) detail::record_event(name, EventKind::kCounter, value);
}

// ---------------------------------------------------------------------
// Flow events: correlate one logical request (a scenario run) across the
// threads that service it.  Perfetto draws an arrow from the slice
// enclosing the flow-begin through every flow-step to the flow-end, so a
// scenario request can be followed into cache lookups, campaign
// allocations, and per-worker replica blocks (DESIGN.md §5f).
// ---------------------------------------------------------------------

/// Process-unique correlation id.  0 means "no flow".
using FlowId = std::uint64_t;

/// Mint a fresh nonzero flow id (atomic counter; ids are unique within
/// the process, which is all the trace format needs).
[[nodiscard]] FlowId new_flow_id() noexcept;

/// The flow id of the innermost active ScopedFlow, or 0.  Worker-side
/// instrumentation reads this to attach flow steps without threading the
/// id through every engine signature.
[[nodiscard]] FlowId current_flow() noexcept;

inline void flow_begin(const char* name, FlowId id) {
  if (id != 0 && enabled()) {
    detail::record_flow(name, EventKind::kFlowBegin, id);
  }
}
inline void flow_step(const char* name, FlowId id) {
  if (id != 0 && enabled()) {
    detail::record_flow(name, EventKind::kFlowStep, id);
  }
}
inline void flow_end(const char* name, FlowId id) {
  if (id != 0 && enabled()) {
    detail::record_flow(name, EventKind::kFlowEnd, id);
  }
}

/// RAII flow scope: emits the flow-begin at construction and the flow-end
/// at destruction (guaranteeing balanced pairs even on early returns), and
/// publishes the id via current_flow() for the duration.  An id of 0 makes
/// the whole object inert.  Scopes are process-global, not per-thread:
/// one top-level request is in flight at a time (the scenario runner), and
/// workers read the published id.
class ScopedFlow {
 public:
  ScopedFlow(const char* name, FlowId id);
  ~ScopedFlow();
  ScopedFlow(const ScopedFlow&) = delete;
  ScopedFlow& operator=(const ScopedFlow&) = delete;

 private:
  const char* name_;
  FlowId id_;
  FlowId previous_;
};

/// RAII begin/end pair.  The enabled check happens once, at construction,
/// so a span whose scope outlives a set_enabled(false) still closes.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(enabled() ? name : nullptr) {
    if (name_ != nullptr) record_begin(name_);
  }
  /// Span with key=value arguments on the begin event (scenario name,
  /// policy kind, replica range, ...).
  TraceSpan(const char* name, std::vector<TraceArg> args)
      : name_(enabled() ? name : nullptr) {
    if (name_ != nullptr) record_begin(name_, std::move(args));
  }
  /// Attach an argument to the closing end event — for outcomes only
  /// known at scope exit (cache hit vs miss).
  void end_arg(TraceArg arg) {
    if (name_ != nullptr) end_args_.push_back(std::move(arg));
  }
  ~TraceSpan() {
    if (name_ == nullptr) return;
    if (end_args_.empty()) {
      record_end(name_);
    } else {
      record_end(name_, std::move(end_args_));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::vector<TraceArg> end_args_;
};

/// Collect every thread's buffered events, in (tid, recording) order, and
/// clear the buffers.  Not safe concurrently with recording.
[[nodiscard]] std::vector<TraceEvent> drain_events();

/// Copy every thread's buffered events without clearing them — for report
/// rollups that must not steal the trace out from under a pending
/// TraceEnvSession flush.  Not safe concurrently with recording.
[[nodiscard]] std::vector<TraceEvent> snapshot_events();

/// Render `events` as a Chrome trace_event JSON document ("traceEvents"
/// array form; loads in chrome://tracing and Perfetto).  Formatting is
/// byte-deterministic for a given event sequence, which is what the
/// fake-clock golden test pins.
[[nodiscard]] std::string render_chrome_trace(
    const std::vector<TraceEvent>& events);

/// drain_events() + render + write to `path`.  Returns false (and leaves
/// no partial file behind, best effort) when the file cannot be written.
bool write_chrome_trace_file(const std::string& path);

/// Drop all buffered events without serializing (tests).
void reset_trace_buffers();

/// Number of currently buffered events across all threads (tests).
[[nodiscard]] std::size_t buffered_event_count();

/// Opt-in environment session used by harness mains (one inline instance
/// lives in bench_common.hpp): when LAZYCKPT_TRACE=<path> is set, tracing
/// is enabled for the process lifetime and the buffered events are written
/// to <path> at destruction — after main returns, when all worker threads
/// have been joined.  The special value "1" enables recording without
/// writing a file (the `LAZYCKPT_TRACE=1 ctest` spelling that drives the
/// instrumented paths through the golden-master suites).
class TraceEnvSession {
 public:
  TraceEnvSession();
  ~TraceEnvSession();
  TraceEnvSession(const TraceEnvSession&) = delete;
  TraceEnvSession& operator=(const TraceEnvSession&) = delete;

  /// True when LAZYCKPT_TRACE was set and the session will write a file.
  [[nodiscard]] bool active() const noexcept { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace lazyckpt::obs
