#pragma once

/// \file trace.hpp
/// \brief Structured tracing: scoped spans, instants, and counter samples,
/// buffered per thread and exported as Chrome trace_event / Perfetto JSON
/// (DESIGN.md §5f).
///
/// Contract ("observe, never perturb"): recording reads the obs clock and
/// appends to a thread-local buffer — it never touches RNG streams, policy
/// state, or any value that feeds simulation results, so every golden
/// master stays bit-identical whether tracing is on or off.  With tracing
/// disabled, each instrumentation site costs one relaxed load of a cold
/// atomic bool and a predictable branch.
///
/// Concurrency model: each thread appends to its own buffer (no locks or
/// atomics on the recording path beyond the enabled flag); the global
/// registry of buffers is touched only on a thread's first event and by
/// drain/serialize/reset.  Draining is NOT safe concurrently with
/// recording — flush after joining workers (the bench harness flushes
/// after main returns; the parallel pool joins its threads per region).
///
/// Event names must be string literals (or otherwise static storage): the
/// recorder stores the pointer, not a copy.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace lazyckpt::obs {

/// What a trace event marks.  Serialized phases: kBegin→"B", kEnd→"E",
/// kInstant→"i", kCounter→"C".
enum class EventKind : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

namespace detail {
// Cold flag read by every instrumentation site.  Off by default; flipped
// by set_enabled(), or at load time when LAZYCKPT_TRACE is set in the
// environment (see trace.cpp), so test binaries exercise the instrumented
// paths under `LAZYCKPT_TRACE=1 ctest` without any per-test wiring.
extern std::atomic<bool> g_enabled;

// Out-of-line slow path: append to the calling thread's buffer.
void record_event(const char* name, EventKind kind, double value);
}  // namespace detail

/// True when telemetry (tracing and metrics) is recording.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turn telemetry on or off process-wide.
void set_enabled(bool on) noexcept;

/// One recorded event.  `name` points at static storage.
struct TraceEvent {
  const char* name = nullptr;
  EventKind kind = EventKind::kInstant;
  std::uint32_t tid = 0;   ///< recording thread (registration order)
  TimeNs ts_ns = 0;        ///< obs::process_clock() at record time
  double value = 0.0;      ///< kCounter sample value
};

/// Record a begin/end pair manually.  Prefer TraceSpan.
void record_begin(const char* name);
void record_end(const char* name);

/// Record a point event (progress heartbeat, phase marker).
inline void instant(const char* name) {
  if (enabled()) detail::record_event(name, EventKind::kInstant, 0.0);
}

/// Record a counter sample (rendered as a track in the trace viewer).
inline void counter(const char* name, double value) {
  if (enabled()) detail::record_event(name, EventKind::kCounter, value);
}

/// RAII begin/end pair.  The enabled check happens once, at construction,
/// so a span whose scope outlives a set_enabled(false) still closes.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(enabled() ? name : nullptr) {
    if (name_ != nullptr) record_begin(name_);
  }
  ~TraceSpan() {
    if (name_ != nullptr) record_end(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
};

/// Collect every thread's buffered events, in (tid, recording) order, and
/// clear the buffers.  Not safe concurrently with recording.
[[nodiscard]] std::vector<TraceEvent> drain_events();

/// Render `events` as a Chrome trace_event JSON document ("traceEvents"
/// array form; loads in chrome://tracing and Perfetto).  Formatting is
/// byte-deterministic for a given event sequence, which is what the
/// fake-clock golden test pins.
[[nodiscard]] std::string render_chrome_trace(
    const std::vector<TraceEvent>& events);

/// drain_events() + render + write to `path`.  Returns false (and leaves
/// no partial file behind, best effort) when the file cannot be written.
bool write_chrome_trace_file(const std::string& path);

/// Drop all buffered events without serializing (tests).
void reset_trace_buffers();

/// Number of currently buffered events across all threads (tests).
[[nodiscard]] std::size_t buffered_event_count();

/// Opt-in environment session used by harness mains (one inline instance
/// lives in bench_common.hpp): when LAZYCKPT_TRACE=<path> is set, tracing
/// is enabled for the process lifetime and the buffered events are written
/// to <path> at destruction — after main returns, when all worker threads
/// have been joined.  The special value "1" enables recording without
/// writing a file (the `LAZYCKPT_TRACE=1 ctest` spelling that drives the
/// instrumented paths through the golden-master suites).
class TraceEnvSession {
 public:
  TraceEnvSession();
  ~TraceEnvSession();
  TraceEnvSession(const TraceEnvSession&) = delete;
  TraceEnvSession& operator=(const TraceEnvSession&) = delete;

  /// True when LAZYCKPT_TRACE was set and the session will write a file.
  [[nodiscard]] bool active() const noexcept { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace lazyckpt::obs
