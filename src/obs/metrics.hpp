#pragma once

/// \file metrics.hpp
/// \brief Named counters, gauges, and fixed-bucket histograms with a
/// deterministic snapshot API (DESIGN.md §5f).
///
/// Instruments are created on demand by name through the process registry
/// and live for the process lifetime, so hot paths cache a reference once
/// (function-local static) and then pay only a relaxed atomic op per
/// update — and even that only behind `if (obs::enabled())`, keeping the
/// disabled cost to one branch on a cold bool.
///
/// Snapshots iterate a std::map, so the emitted order is the lexicographic
/// name order — never hash order — and the JSON block embedded in BENCH_*
/// files is stable across platforms.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <atomic>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lazyckpt::obs {

/// Monotonic event count.  add() is safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value with a high-water helper.  Thread-safe.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  /// Raise the gauge to `v` if it is larger (queue-depth high-water).
  void record_max(double v) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (v > current && !value_.compare_exchange_weak(
                              current, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: counts of observations <= each upper bound,
/// plus an overflow bucket.  Bounds are fixed at creation (no resizing on
/// the hot path); observe() is one linear scan over a handful of doubles
/// and one relaxed increment.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; counts.size() == bounds().size() + 1 (overflow).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t total() const noexcept;
  /// Sum of every observed value (Prometheus `_sum` series).  Accumulated
  /// with relaxed CAS adds, so under concurrent observers the float-add
  /// order — and hence the last bits — is telemetry-grade, not
  /// golden-master-grade.
  [[nodiscard]] double sum() const noexcept;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
};

/// One instrument's value at snapshot time.
struct MetricValue {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;                   ///< counter / histogram total
  double value = 0.0;                        ///< gauge
  double sum = 0.0;                          ///< histogram observation sum
  std::vector<double> bucket_bounds;         ///< histogram
  std::vector<std::uint64_t> bucket_counts;  ///< histogram (+overflow slot)
};

/// A point-in-time copy of every registered instrument, in name order.
struct MetricsSnapshot {
  std::vector<MetricValue> entries;

  /// The entry named `name`, or nullptr.
  [[nodiscard]] const MetricValue* find(std::string_view name) const;

  /// Render as a deterministic JSON object: {"name": value, ...} with
  /// histograms as {"buckets": [...], "counts": [...]}.  `indent` prefixes
  /// every emitted line (matches bench JSON nesting).
  [[nodiscard]] std::string to_json(const std::string& indent) const;
};

/// The process instrument registry.  Lookup takes a mutex; hot paths do it
/// once and cache the returned reference.
class Registry {
 public:
  /// Find-or-create.  Names are namespaced per instrument kind, so asking
  /// for counter("x") and gauge("x") yields two independent instruments —
  /// by convention instrumentation sites never reuse a name across kinds.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every instrument (bench arms, tests).  Instruments stay
  /// registered so cached references remain valid.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry all instrumentation records into.
[[nodiscard]] Registry& metrics();

}  // namespace lazyckpt::obs
