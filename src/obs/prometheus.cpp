#include "obs/prometheus.hpp"

#include <cstdio>

namespace lazyckpt::obs {
namespace {

/// Registry name → Prometheus name: `lazyckpt_` prefix, dots to
/// underscores.  Registry names are lowercase `[a-z0-9_.]` by the
/// metric-name-style lint rule, so the result is always a valid
/// Prometheus identifier.
std::string prometheus_name(const std::string& name) {
  std::string out = "lazyckpt_";
  out.reserve(out.size() + name.size());
  for (const char c : name) out += c == '.' ? '_' : c;
  return out;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_count(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.entries.size() * 96);
  for (const MetricValue& entry : snapshot.entries) {
    const std::string name = prometheus_name(entry.name);
    switch (entry.kind) {
      case MetricValue::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " ";
        append_count(out, entry.count);
        out += '\n';
        break;
      case MetricValue::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " ";
        append_double(out, entry.value);
        out += '\n';
        break;
      case MetricValue::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < entry.bucket_bounds.size(); ++b) {
          cumulative += b < entry.bucket_counts.size()
                            ? entry.bucket_counts[b]
                            : 0;
          out += name + "_bucket{le=\"";
          append_double(out, entry.bucket_bounds[b]);
          out += "\"} ";
          append_count(out, cumulative);
          out += '\n';
        }
        out += name + "_bucket{le=\"+Inf\"} ";
        append_count(out, entry.count);
        out += '\n';
        out += name + "_sum ";
        append_double(out, entry.sum);
        out += '\n';
        out += name + "_count ";
        append_count(out, entry.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace lazyckpt::obs
