#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string_view>

namespace lazyckpt::obs {
namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
}

/// Nanoseconds as microseconds with a fixed 3-decimal remainder — the
/// same stable formatting the trace serializer uses for timestamps.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

std::size_t distinct_flows(const std::vector<TraceEvent>& events) {
  std::set<std::uint64_t> ids;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kFlowBegin ||
        event.kind == EventKind::kFlowStep ||
        event.kind == EventKind::kFlowEnd) {
      ids.insert(event.flow);
    }
  }
  return ids.size();
}

}  // namespace

std::vector<SpanRollup> rollup_spans(const std::vector<TraceEvent>& events) {
  struct OpenSpan {
    const char* name;
    TimeNs start_ns;
    std::uint64_t child_ns = 0;
  };
  std::map<std::uint32_t, std::vector<OpenSpan>> stacks;
  std::map<std::string, SpanRollup> by_name;

  for (const TraceEvent& event : events) {
    if (event.kind != EventKind::kBegin && event.kind != EventKind::kEnd) {
      continue;
    }
    auto& stack = stacks[event.tid];
    if (event.kind == EventKind::kBegin) {
      stack.push_back({event.name, event.ts_ns});
      continue;
    }
    if (stack.empty() ||
        std::string_view(stack.back().name) != event.name) {
      continue;  // unbalanced input: stay robust, the validator reports it
    }
    const OpenSpan span = stack.back();
    stack.pop_back();
    const std::uint64_t duration =
        event.ts_ns >= span.start_ns ? event.ts_ns - span.start_ns : 0;
    if (!stack.empty()) stack.back().child_ns += duration;

    SpanRollup& rollup = by_name[event.name];
    if (rollup.count == 0) rollup.name = event.name;
    ++rollup.count;
    rollup.total_ns += duration;
    rollup.self_ns +=
        duration >= span.child_ns ? duration - span.child_ns : 0;
  }

  std::vector<SpanRollup> rollups;
  rollups.reserve(by_name.size());
  for (auto& [name, rollup] : by_name) rollups.push_back(std::move(rollup));
  std::stable_sort(rollups.begin(), rollups.end(),
                   [](const SpanRollup& a, const SpanRollup& b) {
                     if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
                     return a.name < b.name;
                   });
  return rollups;
}

std::string render_run_report(const RunReportInputs& inputs) {
  std::string out;
  out.reserve(2048);
  out += "{\n";
  out += "  \"schema\": \"lazyckpt-run-report\",\n";
  out += "  \"version\": " + std::to_string(kRunReportSchemaVersion) + ",\n";
  out += "  \"tool\": \"";
  append_escaped(out, inputs.tool);
  out += "\",\n";

  out += "  \"scenarios\": [";
  for (std::size_t i = 0; i < inputs.scenarios.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"';
    append_escaped(out, inputs.scenarios[i]);
    out += '"';
  }
  out += "],\n";

  out += "  \"machine\": {";
  for (std::size_t i = 0; i < inputs.machine.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_escaped(out, inputs.machine[i].first);
    out += "\": ";
    out += inputs.machine[i].second;  // caller-rendered JSON value
  }
  out += inputs.machine.empty() ? "},\n" : "\n  },\n";

  out += "  \"trace\": {\"events\": " +
         std::to_string(inputs.events.size()) +
         ", \"flows\": " + std::to_string(distinct_flows(inputs.events)) +
         "},\n";

  const auto rollups = rollup_spans(inputs.events);
  out += "  \"spans\": [";
  for (std::size_t i = 0; i < rollups.size(); ++i) {
    const SpanRollup& r = rollups[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, r.name);
    out += "\", \"count\": " + std::to_string(r.count) + ", \"total_us\": ";
    append_us(out, r.total_ns);
    out += ", \"self_us\": ";
    append_us(out, r.self_ns);
    out += "}";
  }
  out += rollups.empty() ? "],\n" : "\n  ],\n";

  if (inputs.has_cache) {
    out += "  \"cache\": {\"hits\": " + std::to_string(inputs.cache_hits) +
           ", \"misses\": " + std::to_string(inputs.cache_misses) +
           ", \"bytes_read\": " + std::to_string(inputs.cache_bytes_read) +
           ", \"bytes_written\": " +
           std::to_string(inputs.cache_bytes_written) +
           ", \"evictions\": " + std::to_string(inputs.cache_evictions) +
           "},\n";
  }

  out += "  \"metrics\": ";
  out += inputs.metrics.to_json("  ");
  out += "\n}\n";
  return out;
}

bool write_run_report_file(const RunReportInputs& inputs,
                           const std::string& path) {
  const std::string json = render_run_report(inputs);
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), out) == json.size();
  std::fclose(out);
  if (!ok) std::remove(path.c_str());
  return ok;
}

}  // namespace lazyckpt::obs
