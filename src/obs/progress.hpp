#pragma once

/// \file progress.hpp
/// \brief Progress heartbeat for long sweeps and campaigns
/// (DESIGN.md §5f): a background ticker that periodically prints one
/// "done/total | rate | ETA" line to stderr.
///
/// The ticker *only reads*: the `sim.replicas_done` /
/// `sim.campaign_replicas_done` gauges the engine already maintains, and
/// the obs process clock.  It writes nothing any result path consumes, so
/// enabling it cannot perturb a single golden-mastered byte — the same
/// "observe, never perturb" contract as the tracer.  Output goes to
/// stderr (stdout stays reserved for deterministic tables/JSON).
///
/// Wired behind `lazyckpt-run --progress` and the LAZYCKPT_PROGRESS
/// environment variable; both imply obs::set_enabled(true) so the gauges
/// are live.

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "obs/clock.hpp"

namespace lazyckpt::obs {

/// Background progress printer.  One instance per driver process; tasks
/// (scenario runs) are announced via begin()/finish() from the driving
/// thread.  The ticker thread wakes every `interval_ms` and prints the
/// current task's progress; between tasks it stays silent.
class ProgressTicker {
 public:
  struct Options {
    unsigned interval_ms = 500;
    std::FILE* out = nullptr;  ///< nullptr → stderr
  };

  ProgressTicker() : ProgressTicker(Options{}) {}
  explicit ProgressTicker(Options options);
  ~ProgressTicker();
  ProgressTicker(const ProgressTicker&) = delete;
  ProgressTicker& operator=(const ProgressTicker&) = delete;

  /// Start reporting a task: `label` prefixes every line, `total` is the
  /// expected final value of the gauge named `gauge_name` (must be a
  /// string literal; the ticker re-reads it every tick).
  void begin(std::string label, std::uint64_t total, const char* gauge_name);

  /// Print a completion line for the current task and go silent until the
  /// next begin().
  void finish();

 private:
  void run();
  /// One progress line; returns silently when no task is active.
  void tick();

  std::FILE* out_;
  unsigned interval_ms_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool active_ = false;
  std::string label_;
  std::uint64_t total_ = 0;
  const char* gauge_name_ = nullptr;
  TimeNs start_ns_ = 0;

  std::thread thread_;
};

}  // namespace lazyckpt::obs
