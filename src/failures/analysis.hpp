#pragma once

/// \file analysis.hpp
/// \brief Failure-log analytics beyond inter-arrival fitting: root-cause
/// category breakdowns, per-node hot spots, and filtered sub-traces —
/// the standard cuts of the LANL failure-data studies the paper builds on.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "failures/failure_event.hpp"
#include "failures/trace.hpp"

namespace lazyckpt::failures {

/// Share and rate of one root-cause category in a log.
struct CategoryStats {
  FailureCategory category = FailureCategory::kUnknown;
  std::size_t count = 0;
  double fraction = 0.0;    ///< of all events
  double mtbf_hours = 0.0;  ///< observed MTBF of this category alone
                            ///< (0 when fewer than two events)
};

/// Per-category statistics, ordered by descending count.  Categories with
/// zero events are omitted.  Requires a non-empty trace.
std::vector<CategoryStats> category_breakdown(const FailureTrace& trace);

/// A node and its failure count.
struct NodeStats {
  std::int32_t node_id = 0;
  std::size_t count = 0;
};

/// The `top_n` nodes with the most failures, descending (ties by id).
/// Fewer rows are returned when the log has fewer distinct nodes.
std::vector<NodeStats> top_offender_nodes(const FailureTrace& trace,
                                          std::size_t top_n);

/// Events of one category, timestamps preserved.
FailureTrace filter_by_category(const FailureTrace& trace,
                                FailureCategory category);

/// Events of one node, timestamps preserved.
FailureTrace filter_by_node(const FailureTrace& trace, std::int32_t node_id);

/// Merge several subsystem logs into one system log (the union, sorted).
/// Typical use: CPU, network and filesystem consoles recorded separately.
FailureTrace merge(std::span<const FailureTrace> traces);

/// Collapse cascades: events within `window_hours` of an accepted event
/// are treated as symptoms of the same incident and dropped (first event
/// of each cluster wins).  This is the standard coalescing step applied
/// to raw console logs before MTBF analysis — raw logs often record one
/// physical failure as a burst of messages.
FailureTrace coalesce(const FailureTrace& trace, double window_hours);

}  // namespace lazyckpt::failures
