#pragma once

/// \file failure_event.hpp
/// \brief A single system failure record, LANL-public-failure-data style.

#include <cstdint>
#include <string>

namespace lazyckpt::failures {

/// Coarse root-cause categories used in the LANL failure-data release.
enum class FailureCategory : std::uint8_t {
  kHardware = 0,
  kSoftware,
  kNetwork,
  kEnvironment,
  kUnknown,
};

/// Stable string form of a category ("hardware", ...).
const char* to_string(FailureCategory category) noexcept;

/// Parse a category string; unknown strings map to kUnknown.
FailureCategory category_from_string(const std::string& text) noexcept;

/// One failure event.  Times are hours since the start of the log.
struct FailureEvent {
  double time_hours = 0.0;
  std::int32_t node_id = 0;
  FailureCategory category = FailureCategory::kUnknown;

  friend bool operator<(const FailureEvent& a, const FailureEvent& b) noexcept {
    return a.time_hours < b.time_hours;
  }
};

}  // namespace lazyckpt::failures
