#pragma once

/// \file generator.hpp
/// \brief Synthetic failure-log generation.
///
/// SUBSTITUTION NOTE (see DESIGN.md §3): the paper analyzes 9+ years of
/// proprietary OLCF logs and the public LANL failure-data release.  We do
/// not ship those logs; instead we generate renewal-process traces from the
/// Weibull fits the paper itself reports (shape k < 1, per-system MTBF).
/// Downstream code — fitting, K-S tests, agents, policies — consumes only
/// inter-arrival samples, so the substitution exercises identical paths.

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "failures/trace.hpp"
#include "stats/distribution.hpp"

namespace lazyckpt::failures {

/// Parameters of one synthetic system log.
struct SyntheticLogSpec {
  std::string system_name;    ///< e.g. "OLCF", "LANL-4"
  double mtbf_hours = 0.0;    ///< observed system MTBF
  double weibull_shape = 0.6; ///< k < 1: temporal locality in failures
  double span_hours = 0.0;    ///< log duration
  std::int32_t node_count = 1;///< node ids are drawn uniformly from [0, n)
  std::uint64_t seed = 1;     ///< deterministic generation
};

/// The paper's system portfolio (Fig. 6/7): OLCF plus LANL systems
/// 4, 5, 18, 19 and 20, with MTBFs and shapes consistent with the published
/// analysis (OLCF: MTBF 7.5 h; shapes in 0.4–0.75).
const std::vector<SyntheticLogSpec>& paper_system_specs();

/// Generate a renewal-process trace: inter-arrival times drawn i.i.d. from
/// `inter_arrival`, truncated at `span_hours`.  Node ids and categories are
/// sampled uniformly.  Requires span_hours > 0 and node_count >= 1.
FailureTrace generate_renewal_trace(const stats::Distribution& inter_arrival,
                                    double span_hours,
                                    std::int32_t node_count, Rng& rng);

/// Generate the trace described by `spec` (Weibull renewal process).
FailureTrace generate_trace(const SyntheticLogSpec& spec);

/// Burst-process generator: a renewal base process where each base failure
/// triggers, with probability `burst_probability`, a short burst of
/// `burst_size` follow-on failures with exponential spacing of mean
/// `burst_gap_hours`.  Produces even stronger temporal locality than a
/// Weibull renewal process; used for robustness/ablation experiments.
struct BurstSpec {
  double base_mtbf_hours = 0.0;
  double span_hours = 0.0;
  double burst_probability = 0.3;
  int burst_size = 2;
  double burst_gap_hours = 0.25;
  std::int32_t node_count = 1;
};

/// Generate a burst-process trace.  The base process is exponential; the
/// effective MTBF of the result is lower than base_mtbf_hours.
FailureTrace generate_burst_trace(const BurstSpec& spec, Rng& rng);

}  // namespace lazyckpt::failures
