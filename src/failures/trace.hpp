#pragma once

/// \file trace.hpp
/// \brief A time-ordered failure log with CSV persistence and the
/// derived statistics the paper's analysis consumes (Sec. 4).

#include <string>
#include <vector>

#include "failures/failure_event.hpp"

namespace lazyckpt::failures {

/// An immutable-after-build, time-sorted failure log.
class FailureTrace {
 public:
  FailureTrace() = default;

  /// Build from events (sorted internally).  Negative timestamps rejected.
  explicit FailureTrace(std::vector<FailureEvent> events);

  /// CSV round-trip.  Columns: time_hours,node_id,category.
  static FailureTrace load_csv(const std::string& path);
  void save_csv(const std::string& path) const;

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] const std::vector<FailureEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const FailureEvent& at(std::size_t i) const {
    return events_.at(i);
  }

  /// Timestamp of the last event (0 for an empty trace).
  [[nodiscard]] double span_hours() const noexcept;

  /// Successive differences of event timestamps (size() - 1 values).
  /// This is the sample the paper fits distributions to.
  [[nodiscard]] std::vector<double> inter_arrival_times() const;

  /// Observed mean time between failures.  Requires size() >= 2.
  [[nodiscard]] double observed_mtbf() const;

  /// Fraction of inter-arrival gaps strictly shorter than `window_hours` —
  /// the paper's temporal-locality headline ("~45% of failures occur within
  /// 3 hours of the last failure").  Requires size() >= 2.
  [[nodiscard]] double fraction_within(double window_hours) const;

  /// Sub-trace with events in [from_hours, to_hours), times re-based to 0.
  [[nodiscard]] FailureTrace window(double from_hours, double to_hours) const;

  /// Number of events with time <= `now_hours` (no look-ahead helper).
  [[nodiscard]] std::size_t count_until(double now_hours) const noexcept;

 private:
  std::vector<FailureEvent> events_;
};

}  // namespace lazyckpt::failures
