#pragma once

/// \file agent.hpp
/// \brief Failure-log agent (paper Sec. 6.1, Fig. 22).
///
/// The prototype C/R library queries the machine's failure database for new
/// failure events and maintains a moving-average MTBF estimate for the
/// dynamic-OCI and iLazy strategies.  All queries are parameterized by the
/// caller's current time, so the agent can never look ahead of the replayed
/// log — the property the paper's trace-driven evaluation depends on
/// ("without any look-ahead or prediction").

#include <cstddef>
#include <optional>

#include "failures/trace.hpp"
#include "stats/descriptive.hpp"

namespace lazyckpt::failures {

/// Read-only, no-look-ahead view over a failure log.
class FailureLogAgent {
 public:
  /// `history_window` is the moving-average window (in events) for the MTBF
  /// estimate; the paper's dynamic OCI uses a short recent-history window.
  explicit FailureLogAgent(const FailureTrace& trace,
                           std::size_t history_window = 16);

  /// Timestamp of the most recent failure at or before `now_hours`.
  [[nodiscard]] std::optional<double> last_failure_before(
      double now_hours) const;

  /// Number of failures at or before `now_hours`.
  [[nodiscard]] std::size_t failures_before(double now_hours) const;

  /// Moving-average MTBF over the most recent `history_window` inter-arrival
  /// gaps that completed at or before `now_hours`.  Returns `fallback` when
  /// fewer than two failures have been observed.
  [[nodiscard]] double mtbf_estimate(double now_hours, double fallback) const;

  /// Time elapsed since the last failure, or since the log start when no
  /// failure has been observed yet.
  [[nodiscard]] double time_since_failure(double now_hours) const;

 private:
  const FailureTrace& trace_;
  std::size_t history_window_;
};

}  // namespace lazyckpt::failures
