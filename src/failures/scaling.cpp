#include "failures/scaling.hpp"

#include "common/error.hpp"

namespace lazyckpt::failures {

double system_mtbf(double node_mtbf_hours, int node_count) {
  require_positive(node_mtbf_hours, "node_mtbf_hours");
  require(node_count >= 1, "node_count must be >= 1");
  return node_mtbf_hours / static_cast<double>(node_count);
}

double node_mtbf(double system_mtbf_hours, int node_count) {
  require_positive(system_mtbf_hours, "system_mtbf_hours");
  require(node_count >= 1, "node_count must be >= 1");
  return system_mtbf_hours * static_cast<double>(node_count);
}

}  // namespace lazyckpt::failures
