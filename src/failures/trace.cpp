#include "failures/trace.hpp"

#include <algorithm>
#include <cmath>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace lazyckpt::failures {

FailureTrace::FailureTrace(std::vector<FailureEvent> events)
    : events_(std::move(events)) {
  for (const auto& e : events_) {
    require(std::isfinite(e.time_hours) && e.time_hours >= 0.0,
            "FailureTrace timestamps must be finite and non-negative");
  }
  std::sort(events_.begin(), events_.end());
}

FailureTrace FailureTrace::load_csv(const std::string& path) {
  const CsvDocument doc = CsvDocument::load(path);
  const std::size_t time_col = doc.column_index("time_hours");
  const std::size_t node_col = doc.column_index("node_id");
  const std::size_t cat_col = doc.column_index("category");

  std::vector<FailureEvent> events;
  events.reserve(doc.row_count());
  for (std::size_t i = 0; i < doc.row_count(); ++i) {
    const auto& row = doc.row(i);
    FailureEvent event;
    event.time_hours =
        parse_double(row[time_col], "failure trace row " + std::to_string(i));
    event.node_id = static_cast<std::int32_t>(parse_double(
        row[node_col], "failure trace node_id row " + std::to_string(i)));
    event.category = category_from_string(row[cat_col]);
    events.push_back(event);
  }
  return FailureTrace(std::move(events));
}

void FailureTrace::save_csv(const std::string& path) const {
  CsvDocument doc({"time_hours", "node_id", "category"});
  for (const auto& e : events_) {
    doc.add_row({std::to_string(e.time_hours), std::to_string(e.node_id),
                 to_string(e.category)});
  }
  doc.save(path);
}

double FailureTrace::span_hours() const noexcept {
  return events_.empty() ? 0.0 : events_.back().time_hours;
}

std::vector<double> FailureTrace::inter_arrival_times() const {
  std::vector<double> gaps;
  if (events_.size() < 2) return gaps;
  gaps.reserve(events_.size() - 1);
  for (std::size_t i = 1; i < events_.size(); ++i) {
    gaps.push_back(events_[i].time_hours - events_[i - 1].time_hours);
  }
  return gaps;
}

double FailureTrace::observed_mtbf() const {
  require(events_.size() >= 2, "observed_mtbf needs at least two failures");
  return (events_.back().time_hours - events_.front().time_hours) /
         static_cast<double>(events_.size() - 1);
}

double FailureTrace::fraction_within(double window_hours) const {
  require_positive(window_hours, "window_hours");
  const auto gaps = inter_arrival_times();
  require(!gaps.empty(), "fraction_within needs at least two failures");
  std::size_t hits = 0;
  for (const double g : gaps) {
    if (g < window_hours) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(gaps.size());
}

FailureTrace FailureTrace::window(double from_hours, double to_hours) const {
  require(from_hours >= 0.0 && to_hours > from_hours,
          "FailureTrace::window needs 0 <= from < to");
  std::vector<FailureEvent> selected;
  for (const auto& e : events_) {
    if (e.time_hours >= from_hours && e.time_hours < to_hours) {
      FailureEvent shifted = e;
      shifted.time_hours -= from_hours;
      selected.push_back(shifted);
    }
  }
  return FailureTrace(std::move(selected));
}

std::size_t FailureTrace::count_until(double now_hours) const noexcept {
  const auto upper = std::upper_bound(
      events_.begin(), events_.end(), now_hours,
      [](double t, const FailureEvent& e) { return t < e.time_hours; });
  return static_cast<std::size_t>(upper - events_.begin());
}

}  // namespace lazyckpt::failures
