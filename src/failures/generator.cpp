#include "failures/generator.hpp"

#include "common/error.hpp"
#include "stats/exponential.hpp"
#include "stats/weibull.hpp"

namespace lazyckpt::failures {
namespace {

FailureCategory sample_category(Rng& rng) noexcept {
  // Rough LANL-release mix: hardware-dominated.
  const double u = rng.uniform();
  if (u < 0.55) return FailureCategory::kHardware;
  if (u < 0.80) return FailureCategory::kSoftware;
  if (u < 0.88) return FailureCategory::kNetwork;
  if (u < 0.93) return FailureCategory::kEnvironment;
  return FailureCategory::kUnknown;
}

FailureEvent make_event(double time_hours, std::int32_t node_count,
                        Rng& rng) noexcept {
  FailureEvent event;
  event.time_hours = time_hours;
  event.node_id = static_cast<std::int32_t>(
      rng.uniform_index(static_cast<std::uint64_t>(node_count)));
  event.category = sample_category(rng);
  return event;
}

}  // namespace

const std::vector<SyntheticLogSpec>& paper_system_specs() {
  // MTBFs/shapes chosen to be consistent with the paper's published analysis
  // (OLCF MTBF 7.5 h; LANL shapes < 1); spans are multi-year like the
  // original logs so fits are tight.
  static const std::vector<SyntheticLogSpec> specs = {
      {"OLCF", 7.5, 0.58, 26280.0, 18688, 101},      // ~3 years
      {"LANL-4", 38.0, 0.62, 43800.0, 164, 102},     // ~5 years
      {"LANL-5", 36.0, 0.65, 43800.0, 164, 103},
      {"LANL-18", 25.0, 0.70, 35040.0, 1024, 104},   // ~4 years
      {"LANL-19", 22.0, 0.72, 35040.0, 1024, 105},
      {"LANL-20", 30.0, 0.48, 35040.0, 512, 106},
  };
  return specs;
}

FailureTrace generate_renewal_trace(const stats::Distribution& inter_arrival,
                                    double span_hours,
                                    std::int32_t node_count, Rng& rng) {
  require_positive(span_hours, "span_hours");
  require(node_count >= 1, "node_count must be >= 1");

  std::vector<FailureEvent> events;
  double t = 0.0;
  while (true) {
    t += inter_arrival.sample(rng);
    if (t >= span_hours) break;
    events.push_back(make_event(t, node_count, rng));
  }
  return FailureTrace(std::move(events));
}

FailureTrace generate_trace(const SyntheticLogSpec& spec) {
  require_positive(spec.mtbf_hours, "SyntheticLogSpec.mtbf_hours");
  const auto weibull = stats::Weibull::from_mtbf_and_shape(
      spec.mtbf_hours, spec.weibull_shape);
  Rng rng(spec.seed);
  return generate_renewal_trace(weibull, spec.span_hours, spec.node_count,
                                rng);
}

FailureTrace generate_burst_trace(const BurstSpec& spec, Rng& rng) {
  require_positive(spec.base_mtbf_hours, "BurstSpec.base_mtbf_hours");
  require_positive(spec.span_hours, "BurstSpec.span_hours");
  require(spec.burst_probability >= 0.0 && spec.burst_probability <= 1.0,
          "BurstSpec.burst_probability must lie in [0, 1]");
  require(spec.burst_size >= 0, "BurstSpec.burst_size must be >= 0");
  require_positive(spec.burst_gap_hours, "BurstSpec.burst_gap_hours");
  require(spec.node_count >= 1, "BurstSpec.node_count must be >= 1");

  const stats::Exponential base =
      stats::Exponential::from_mean(spec.base_mtbf_hours);
  const stats::Exponential gap =
      stats::Exponential::from_mean(spec.burst_gap_hours);

  std::vector<FailureEvent> events;
  double t = 0.0;
  while (true) {
    t += base.sample(rng);
    if (t >= spec.span_hours) break;
    events.push_back(make_event(t, spec.node_count, rng));
    if (rng.uniform() < spec.burst_probability) {
      double burst_t = t;
      for (int i = 0; i < spec.burst_size; ++i) {
        burst_t += gap.sample(rng);
        if (burst_t >= spec.span_hours) break;
        events.push_back(make_event(burst_t, spec.node_count, rng));
      }
    }
  }
  return FailureTrace(std::move(events));
}

}  // namespace lazyckpt::failures
