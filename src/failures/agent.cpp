#include "failures/agent.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lazyckpt::failures {
namespace {

/// Query telemetry (obs::enabled() gated): how often the CR stack consults
/// the failure log, the signal behind the paper's temporal-locality lever.
struct AgentMetrics {
  obs::Counter& mtbf_queries =
      obs::metrics().counter("failures.agent.mtbf_queries");
  obs::Counter& tsf_queries =
      obs::metrics().counter("failures.agent.time_since_failure_queries");

  static AgentMetrics& get() {
    static AgentMetrics instance;
    return instance;
  }
};

}  // namespace

FailureLogAgent::FailureLogAgent(const FailureTrace& trace,
                                 std::size_t history_window)
    : trace_(trace), history_window_(history_window) {
  require(history_window >= 1, "FailureLogAgent history_window must be >= 1");
}

std::optional<double> FailureLogAgent::last_failure_before(
    double now_hours) const {
  const std::size_t count = trace_.count_until(now_hours);
  if (count == 0) return std::nullopt;
  return trace_.at(count - 1).time_hours;
}

std::size_t FailureLogAgent::failures_before(double now_hours) const {
  return trace_.count_until(now_hours);
}

double FailureLogAgent::mtbf_estimate(double now_hours,
                                      double fallback) const {
  if (obs::enabled()) AgentMetrics::get().mtbf_queries.add();
  const std::size_t count = trace_.count_until(now_hours);
  if (count < 2) return fallback;
  const std::size_t gaps = count - 1;
  const std::size_t used = std::min(gaps, history_window_);
  double sum = 0.0;
  for (std::size_t i = gaps - used; i < gaps; ++i) {
    sum += trace_.at(i + 1).time_hours - trace_.at(i).time_hours;
  }
  return sum / static_cast<double>(used);
}

double FailureLogAgent::time_since_failure(double now_hours) const {
  if (obs::enabled()) AgentMetrics::get().tsf_queries.add();
  require_non_negative(now_hours, "now_hours");
  const auto last = last_failure_before(now_hours);
  return last ? now_hours - *last : now_hours;
}

}  // namespace lazyckpt::failures
