#include "failures/analysis.hpp"

#include <algorithm>
#include <array>
#include <map>

#include "common/error.hpp"

namespace lazyckpt::failures {

std::vector<CategoryStats> category_breakdown(const FailureTrace& trace) {
  require(!trace.empty(), "category_breakdown needs a non-empty trace");
  std::array<std::size_t, 5> counts{};
  for (const auto& event : trace.events()) {
    ++counts[static_cast<std::size_t>(event.category)];
  }

  std::vector<CategoryStats> stats;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    CategoryStats entry;
    entry.category = static_cast<FailureCategory>(i);
    entry.count = counts[i];
    entry.fraction =
        static_cast<double>(counts[i]) / static_cast<double>(trace.size());
    const FailureTrace sub = filter_by_category(trace, entry.category);
    entry.mtbf_hours = sub.size() >= 2 ? sub.observed_mtbf() : 0.0;
    stats.push_back(entry);
  }
  std::sort(stats.begin(), stats.end(),
            [](const CategoryStats& a, const CategoryStats& b) {
              return a.count > b.count;
            });
  return stats;
}

std::vector<NodeStats> top_offender_nodes(const FailureTrace& trace,
                                          std::size_t top_n) {
  require(top_n >= 1, "top_offender_nodes needs top_n >= 1");
  std::map<std::int32_t, std::size_t> counts;
  for (const auto& event : trace.events()) ++counts[event.node_id];

  std::vector<NodeStats> nodes;
  nodes.reserve(counts.size());
  for (const auto& [node, count] : counts) nodes.push_back({node, count});
  std::sort(nodes.begin(), nodes.end(),
            [](const NodeStats& a, const NodeStats& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.node_id < b.node_id;
            });
  if (nodes.size() > top_n) nodes.resize(top_n);
  return nodes;
}

FailureTrace filter_by_category(const FailureTrace& trace,
                                FailureCategory category) {
  std::vector<FailureEvent> selected;
  for (const auto& event : trace.events()) {
    if (event.category == category) selected.push_back(event);
  }
  return FailureTrace(std::move(selected));
}

FailureTrace filter_by_node(const FailureTrace& trace,
                            std::int32_t node_id) {
  std::vector<FailureEvent> selected;
  for (const auto& event : trace.events()) {
    if (event.node_id == node_id) selected.push_back(event);
  }
  return FailureTrace(std::move(selected));
}

FailureTrace merge(std::span<const FailureTrace> traces) {
  std::vector<FailureEvent> all;
  for (const auto& trace : traces) {
    all.insert(all.end(), trace.events().begin(), trace.events().end());
  }
  return FailureTrace(std::move(all));  // constructor sorts
}

FailureTrace coalesce(const FailureTrace& trace, double window_hours) {
  require_positive(window_hours, "window_hours");
  std::vector<FailureEvent> kept;
  double last_kept = -window_hours;  // accept the first event always
  bool any = false;
  for (const auto& event : trace.events()) {
    if (!any || event.time_hours - last_kept >= window_hours) {
      kept.push_back(event);
      last_kept = event.time_hours;
      any = true;
    }
  }
  return FailureTrace(std::move(kept));
}

}  // namespace lazyckpt::failures
