#include "failures/failure_event.hpp"

#include <array>

namespace lazyckpt::failures {

namespace {
constexpr std::array<const char*, 5> kNames = {
    "hardware", "software", "network", "environment", "unknown"};
}

const char* to_string(FailureCategory category) noexcept {
  const auto index = static_cast<std::size_t>(category);
  return index < kNames.size() ? kNames[index] : "unknown";
}

FailureCategory category_from_string(const std::string& text) noexcept {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (text == kNames[i]) return static_cast<FailureCategory>(i);
  }
  return FailureCategory::kUnknown;
}

}  // namespace lazyckpt::failures
