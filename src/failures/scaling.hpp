#pragma once

/// \file scaling.hpp
/// \brief Node-count scaling of system reliability.
///
/// With independent node failures, the system-level failure process is the
/// superposition of the per-node processes, so the system MTBF shrinks
/// inversely with node count — the mechanism behind the paper's "OCI
/// decreases as the system size increases" (Observation 1).

namespace lazyckpt::failures {

/// System MTBF (hours) for `node_count` nodes with per-node MTBF
/// `node_mtbf_hours`.  Requires both positive.
double system_mtbf(double node_mtbf_hours, int node_count);

/// Per-node MTBF implied by an observed system MTBF — the inverse mapping,
/// used to calibrate design points against a measured machine.
double node_mtbf(double system_mtbf_hours, int node_count);

}  // namespace lazyckpt::failures
