#include "stats/special.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/fp.hpp"

namespace lazyckpt::stats {

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_pdf(double x) noexcept {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double normal_quantile(double p) {
  require(p > 0.0 && p < 1.0, "normal_quantile requires p in (0, 1)");

  // Acklam's rational approximation, then one Halley refinement step,
  // giving ~1e-15 relative accuracy across the domain.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;

  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // Halley refinement.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                   std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

namespace {

/// Series representation of P(a, x), valid and fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued-fraction representation of Q(a, x) = 1 - P(a, x), for
/// x >= a + 1 (modified Lentz method).
double gamma_q_continued_fraction(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  require(a > 0.0, "regularized_gamma_p requires a > 0");
  require(x >= 0.0, "regularized_gamma_p requires x >= 0");
  if (fp::is_zero(x)) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double digamma(double x) {
  require(x > 0.0, "digamma requires x > 0");
  // Recurrence up to x >= 10, then the asymptotic expansion (error
  // ~1/(240 x^8) < 1e-10 there).
  double result = 0.0;
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

}  // namespace lazyckpt::stats
