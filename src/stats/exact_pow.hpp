#pragma once

/// \file exact_pow.hpp
/// \brief Vendored, vectorizable pow that is bitwise-identical to the
/// platform libm's std::pow — the enabler for batching the iLazy hot path.
///
/// The iLazy interval t^(1-k) and the Weibull quantile (-log1p(-u))^(1/k)
/// dominate the trial kernel (PR 2 measured std::pow at ~25 ns/call, ~40%
/// of the pow-bound arms).  libm's pow cannot be vectorized from the
/// outside, so this file vendors the same algorithm glibc ships on x86-64
/// (the ARM optimized-routines double pow: 128-entry log table + degree-7
/// polynomial, 2^(k/128) exp table + degree-5 polynomial, all in
/// double-double arithmetic) with the exact FMA contraction schedule of
/// the glibc binary, and lays it across SIMD lanes.
///
/// Bit-identity is the repo's core contract, so the kernel is guarded
/// twice:
///  - a deterministic startup probe (exact_pow_selftest) compares the
///    vendored scalar core and the selected SIMD kernel against std::pow
///    on thousands of inputs spanning the engine's domains; any mismatch
///    disables the kernel wholesale and pow_n falls back to std::pow
///    loops (correct everywhere, merely slower);
///  - inputs outside the main path (subnormals, y outside |y| grid,
///    overflow/underflow of y*log x) are delegated per lane to std::pow.
///
/// These translation units are compiled with -ffp-contract=off (see
/// src/stats/CMakeLists.txt): every fused multiply-add in the schedule is
/// written explicitly, and the compiler must not invent or remove any.

#include <cstddef>

namespace lazyckpt::stats {

/// Fill out[i] = std::pow(x[i], y) for i in [0, n), bitwise identical to
/// calling std::pow per element.  Uses the widest verified SIMD kernel
/// the CPU offers; falls back to a std::pow loop when the startup probe
/// rejected the vendored kernel on this platform.
void pow_n(const double* x, double* out, std::size_t n, double y);

/// True when the vendored kernel passed the startup probe and pow_n runs
/// vectorized.  Exposed so benches and tests can report which path ran.
[[nodiscard]] bool exact_pow_active() noexcept;

/// Name of the dispatched kernel: "avx512", "avx2", "scalar", or
/// "libm-fallback" when the probe rejected the vendored tables.
[[nodiscard]] const char* exact_pow_kernel() noexcept;

namespace detail {

/// Scalar main path of the vendored pow.  Returns false (leaving *result
/// untouched) for inputs it does not cover: x subnormal/zero/inf/nan or
/// negative, |y| outside [2^-65, 2^63) or non-finite, or y*log2(x)
/// outside roughly (-1075, 1024).  Callers fall back to std::pow.
[[nodiscard]] bool pow_core(double x, double y, double* result) noexcept;

/// Deterministic probe: returns true iff the vendored scalar core and the
/// given batched kernel agree bitwise with std::pow over the probe set.
using PowNFn = void (*)(const double*, double*, std::size_t, double);
[[nodiscard]] bool exact_pow_selftest(PowNFn kernel);

#if defined(__x86_64__) || defined(_M_X64)
/// SIMD kernels, defined in exact_pow_avx*.cpp (compiled with the target
/// ISA enabled).  Call only after __builtin_cpu_supports says so.
void pow_n_avx2(const double* x, double* out, std::size_t n, double y);
void pow_n_avx512(const double* x, double* out, std::size_t n, double y);
#endif

/// Portable batched kernel built on pow_core (used as the SIMD tail and
/// on non-x86 builds).
void pow_n_scalar(const double* x, double* out, std::size_t n, double y);

}  // namespace detail

}  // namespace lazyckpt::stats
