#pragma once

/// \file distribution.hpp
/// \brief Abstract probability distribution of failure inter-arrival times.
///
/// Concrete distributions (Exponential, Weibull, LogNormal, Normal) implement
/// this interface; everything downstream — the simulator's failure source,
/// the K-S goodness-of-fit test, the QQ-plot, the lost-work Monte Carlo —
/// is written against it.

#include <memory>
#include <span>
#include <string>

#include "common/random.hpp"
#include "stats/sampler.hpp"

namespace lazyckpt::stats {

/// A one-dimensional continuous probability distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density f(x).
  [[nodiscard]] virtual double pdf(double x) const = 0;

  /// Cumulative distribution F(x) = P[X <= x].
  [[nodiscard]] virtual double cdf(double x) const = 0;

  /// Quantile (inverse CDF): the x with F(x) = p, p in (0, 1).
  [[nodiscard]] virtual double quantile(double p) const = 0;

  /// Hazard (instantaneous failure) rate h(x) = f(x) / (1 - F(x)).
  /// For failure inter-arrival times this is the failure rate at time x
  /// since the previous failure — the quantity the iLazy policy tracks.
  [[nodiscard]] virtual double hazard(double x) const;

  /// Distribution mean (for inter-arrival models, the MTBF).
  [[nodiscard]] virtual double mean() const = 0;

  /// Human-readable name ("weibull", "exponential", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Draw one variate via inverse-CDF sampling (deterministic given `rng`).
  [[nodiscard]] virtual double sample(Rng& rng) const;

  /// Snapshot a non-virtual sampling kernel (see stats/sampler.hpp).  The
  /// concrete distributions override this with samplers that precompute
  /// their constants; the default falls back to virtual sample() and must
  /// not outlive this distribution.  Sampler draws are bit-identical to
  /// sample() on the same Rng.
  [[nodiscard]] virtual Sampler sampler() const;

  /// Batched CDF: out[i] = cdf(xs[i]).  Requires xs.size() == out.size()
  /// (xs and out may alias element-for-element, i.e. out == xs is fine).
  /// Concrete distributions override this with a devirtualized loop so
  /// callers evaluating thousands of points (K-S statistics, bootstrap
  /// nulls) pay one virtual call per batch instead of one per point; the
  /// values are bit-identical to elementwise cdf().
  virtual void cdf_n(std::span<const double> xs, std::span<double> out) const;

  /// Deep copy.
  [[nodiscard]] virtual std::unique_ptr<Distribution> clone() const = 0;
};

using DistributionPtr = std::unique_ptr<Distribution>;

}  // namespace lazyckpt::stats
