#pragma once

/// \file ks_test.hpp
/// \brief One-sample Kolmogorov–Smirnov goodness-of-fit test (paper Fig. 7).
///
/// The paper rejects the null hypothesis "the failure inter-arrival sample
/// comes from distribution F" at level 0.05 when the K-S D-statistic exceeds
/// the critical D-value; Weibull wins for all but one system.

#include <functional>
#include <span>
#include <string>

#include "common/random.hpp"
#include "stats/distribution.hpp"

namespace lazyckpt::stats {

/// Result of a one-sample K-S test.
struct KsResult {
  std::string distribution_name;  ///< candidate distribution tested
  double d_statistic = 0.0;       ///< sup_x |F_n(x) - F(x)|
  double critical_value = 0.0;    ///< critical D at the chosen level
  double p_value = 0.0;           ///< asymptotic Kolmogorov p-value
  bool rejected = false;          ///< d_statistic > critical_value

  /// True when the sample is statistically consistent with the candidate.
  [[nodiscard]] bool accepted() const noexcept { return !rejected; }
};

/// sup-norm distance between the empirical CDF of `samples` and `candidate`.
/// Requires a non-empty sample.  Copies and sorts the input; callers that
/// already hold sorted data should use ks_statistic_sorted.
double ks_statistic(std::span<const double> samples,
                    const Distribution& candidate);

/// Same statistic on a sample that is already sorted ascending (the
/// caller's responsibility — unsorted input yields a meaningless D).
/// Skips the copy-and-sort that ks_statistic pays and evaluates the
/// candidate CDF through one batched cdf_n call; bootstrap loops that
/// sort in place call this directly.
double ks_statistic_sorted(std::span<const double> sorted,
                           const Distribution& candidate);

/// Critical D-value at significance `alpha` for sample size n
/// (Stephens' approximation; exact enough for n >= 8).  Supported alpha:
/// 0.10, 0.05, 0.025, 0.01.
double ks_critical_value(std::size_t n, double alpha);

/// Asymptotic Kolmogorov p-value for a given D and n.
double ks_p_value(double d_statistic, std::size_t n);

/// Run the full test at significance `alpha` (default 0.05 as in the paper).
KsResult ks_test(std::span<const double> samples,
                 const Distribution& candidate, double alpha = 0.05);

/// Result of a parametric-bootstrap K-S test for a *fitted* candidate.
struct FittedKsResult {
  double d_statistic = 0.0;     ///< D of the sample vs its own fit
  double critical_value = 0.0;  ///< bootstrap (1-alpha) quantile of D*
  double p_value = 0.0;         ///< bootstrap p-value
  bool rejected = false;
};

/// Maps a sample to its fitted distribution.
using Refit = std::function<DistributionPtr(std::span<const double>)>;

/// Parametric-bootstrap K-S test (Lilliefors-style).  The classic critical
/// values (ks_critical_value) assume a fully specified null; when the
/// candidate's parameters are estimated from the *same sample* — as in the
/// paper's Fig. 7 — D is biased low and the table is anti-conservative.
/// This routine estimates the correct null distribution of D by sampling
/// synthetic data of the same size from the fitted model, refitting, and
/// recomputing D.  `resamples` >= 20.  Refits that throw are skipped
/// (throws Error if more than half fail).
///
/// Resamples run on the shared parallel engine (common/parallel.hpp) with
/// one RNG stream per resample, split from `rng` in index order before
/// dispatch — the result is bit-identical for any LAZYCKPT_THREADS value.
/// `refit` must be safe to call concurrently on distinct inputs.
FittedKsResult ks_test_fitted(std::span<const double> samples,
                              const Refit& refit, std::size_t resamples,
                              double alpha, Rng& rng);

}  // namespace lazyckpt::stats
