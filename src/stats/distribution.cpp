#include "stats/distribution.hpp"

#include "common/error.hpp"

namespace lazyckpt::stats {

double Distribution::hazard(double x) const {
  const double survival = 1.0 - cdf(x);
  if (survival <= 0.0) return 0.0;
  return pdf(x) / survival;
}

double Distribution::sample(Rng& rng) const {
  // uniform_positive() returns u in (0, 1]; map to (0, 1) for quantile
  // functions that diverge at 1.
  double u = rng.uniform_positive();
  if (u >= 1.0) u = 1.0 - 1e-16;
  return quantile(u);
}

Sampler Distribution::sampler() const { return Sampler::generic(*this); }

void Distribution::cdf_n(std::span<const double> xs,
                         std::span<double> out) const {
  require(xs.size() == out.size(), "cdf_n spans must have equal size");
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = cdf(xs[i]);
}

}  // namespace lazyckpt::stats
