#include "stats/sampler.hpp"

#include "stats/distribution.hpp"
#include "stats/exact_pow.hpp"

namespace lazyckpt::stats::detail {

double sample_generic(const Distribution& dist, Rng& rng) {
  return dist.sample(rng);
}

void weibull_transform_n(std::span<double> out, double scale,
                         double inv_shape) {
  // In-place is fine: pow_n never reads an element after writing it.
  pow_n(out.data(), out.data(), out.size(), inv_shape);
  for (double& value : out) value = scale * value;
}

}  // namespace lazyckpt::stats::detail
