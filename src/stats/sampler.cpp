#include "stats/sampler.hpp"

#include "stats/distribution.hpp"

namespace lazyckpt::stats::detail {

double sample_generic(const Distribution& dist, Rng& rng) {
  return dist.sample(rng);
}

}  // namespace lazyckpt::stats::detail
