#pragma once

/// \file lognormal.hpp
/// \brief Log-normal distribution — one of the four candidate fits the
/// paper's K-S analysis (Fig. 7) evaluates against failure logs.

#include <span>

#include <string>
#include "stats/distribution.hpp"
#include "stats/sampler.hpp"

namespace lazyckpt::stats {

/// LogNormal(μ, σ): ln X ~ Normal(μ, σ²), X > 0.
class LogNormal final : public Distribution {
 public:
  /// Construct from the location μ and scale σ > 0 of ln X.
  LogNormal(double mu, double sigma);

  [[nodiscard]] double mu() const noexcept { return mu_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override { return "lognormal"; }
  [[nodiscard]] Sampler sampler() const override;
  void cdf_n(std::span<const double> xs,
             std::span<double> out) const override;
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace lazyckpt::stats
