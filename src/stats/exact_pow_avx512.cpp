/// \file exact_pow_avx512.cpp
/// \brief 8-lane AVX-512F/DQ kernel of the vendored pow (exact_pow.hpp).
///
/// Same lane-parallel transcription of pow_core as exact_pow_avx2.cpp,
/// but with the native 64-bit arithmetic shift and int64→double convert
/// AVX-512 provides, and predicate masks instead of blend vectors.
/// Compiled with -mavx512f -mavx512dq -ffp-contract=off; dispatched only
/// behind __builtin_cpu_supports checks and the startup bitwise probe.

#if defined(__x86_64__) || defined(_M_X64)

#include <cstddef>
#include <cstdint>
#include <immintrin.h>

#include <cmath>
#include <cstring>

#include "stats/exact_pow.hpp"
#include "stats/exact_pow_data.hpp"

namespace lazyckpt::stats::detail {

namespace {

inline double table_double(std::uint64_t bits) noexcept {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

constexpr std::uint64_t kOff = 0x3fe6955500000000ULL;

}  // namespace

void pow_n_avx512(const double* x, double* out, std::size_t n, double y) {
  std::uint64_t iy;
  std::memcpy(&iy, &y, sizeof(iy));
  const auto topy = static_cast<std::uint32_t>(iy >> 52) & 0x7ff;
  if (topy - 0x3be >= 0x80) {
    pow_n_scalar(x, out, n, y);
    return;
  }

  const void* logtab = static_cast<const void*>(&kPowLogTab[0][0]);
  const void* exptab = static_cast<const void*>(&kExpTab[0]);

  const __m512i off = _mm512_set1_epi64(static_cast<long long>(kOff));
  const __m512i mask7f = _mm512_set1_epi64(0x7f);
  const __m512i exp_mask =
      _mm512_set1_epi64(static_cast<long long>(0xfffULL << 52));
  const __m512i one64 = _mm512_set1_epi64(1);
  const __m512i topx_lim = _mm512_set1_epi64(0x7fe);
  const __m512i abstop_mask = _mm512_set1_epi64(0x7ff);
  const __m512i abstop_base = _mm512_set1_epi64(0x3c9);
  const __m512i abstop_span = _mm512_set1_epi64(0x3f);

  const __m512d yv = _mm512_set1_pd(y);
  const __m512d neg_one = _mm512_set1_pd(-1.0);
  const __m512d ln2hi = _mm512_set1_pd(table_double(kPowLn2Hi));
  const __m512d ln2lo = _mm512_set1_pd(table_double(kPowLn2Lo));
  const __m512d a0 = _mm512_set1_pd(table_double(kPowLogPoly[0]));
  const __m512d a1 = _mm512_set1_pd(table_double(kPowLogPoly[1]));
  const __m512d a2 = _mm512_set1_pd(table_double(kPowLogPoly[2]));
  const __m512d a3 = _mm512_set1_pd(table_double(kPowLogPoly[3]));
  const __m512d a4 = _mm512_set1_pd(table_double(kPowLogPoly[4]));
  const __m512d a5 = _mm512_set1_pd(table_double(kPowLogPoly[5]));
  const __m512d a6 = _mm512_set1_pd(table_double(kPowLogPoly[6]));
  const __m512d invln2n = _mm512_set1_pd(table_double(kExpInvLn2N));
  const __m512d negln2hi = _mm512_set1_pd(table_double(kExpNegLn2HiN));
  const __m512d negln2lo = _mm512_set1_pd(table_double(kExpNegLn2LoN));
  const __m512d shift = _mm512_set1_pd(table_double(kExpShift));
  const __m512d c2 = _mm512_set1_pd(table_double(kExpPoly[0]));
  const __m512d c3 = _mm512_set1_pd(table_double(kExpPoly[1]));
  const __m512d c4 = _mm512_set1_pd(table_double(kExpPoly[2]));
  const __m512d c5 = _mm512_set1_pd(table_double(kExpPoly[3]));

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d xv = _mm512_loadu_pd(x + i);
    const __m512i ix = _mm512_castpd_si512(xv);
    const __m512i topx = _mm512_srli_epi64(ix, 52);
    // topx - 1 >= 0x7fe unsigned catches zero/subnormal/inf/nan/negative.
    __mmask8 bad = _mm512_cmp_epu64_mask(_mm512_sub_epi64(topx, one64),
                                         topx_lim, _MM_CMPINT_NLT);

    // log path
    const __m512i tmp = _mm512_sub_epi64(ix, off);
    const __m512i row = _mm512_and_si512(_mm512_srli_epi64(tmp, 45), mask7f);
    const __m512i row3 = _mm512_add_epi64(_mm512_add_epi64(row, row), row);
    const __m512d kd = _mm512_cvtepi64_pd(_mm512_srai_epi64(tmp, 52));
    const __m512i iz = _mm512_sub_epi64(ix, _mm512_and_si512(tmp, exp_mask));
    const __m512d z = _mm512_castsi512_pd(iz);
    const __m512d invc =
        _mm512_castsi512_pd(_mm512_i64gather_epi64(row3, logtab, 8));
    const __m512d logc = _mm512_castsi512_pd(
        _mm512_i64gather_epi64(_mm512_add_epi64(row3, one64), logtab, 8));
    const __m512d logctail = _mm512_castsi512_pd(_mm512_i64gather_epi64(
        _mm512_add_epi64(row3, _mm512_set1_epi64(2)), logtab, 8));

    const __m512d r = _mm512_fmadd_pd(z, invc, neg_one);
    const __m512d t1 = _mm512_fmadd_pd(kd, ln2hi, logc);
    const __m512d lo1 = _mm512_fmadd_pd(kd, ln2lo, logctail);
    const __m512d t2 = _mm512_add_pd(r, t1);
    const __m512d lo2 = _mm512_add_pd(_mm512_sub_pd(t1, t2), r);
    const __m512d ar = _mm512_mul_pd(a0, r);
    const __m512d ar2 = _mm512_mul_pd(r, ar);
    const __m512d ar3 = _mm512_mul_pd(r, ar2);
    const __m512d lo3 = _mm512_fmsub_pd(ar, r, ar2);
    const __m512d hi = _mm512_add_pd(t2, ar2);
    const __m512d lo4 = _mm512_add_pd(_mm512_sub_pd(t2, hi), ar2);
    const __m512d s1 = _mm512_fmadd_pd(a2, r, a1);
    const __m512d s2 = _mm512_fmadd_pd(a4, r, a3);
    const __m512d s3 = _mm512_fmadd_pd(a6, r, a5);
    const __m512d inner = _mm512_fmadd_pd(s3, ar2, s2);
    const __m512d q = _mm512_fmadd_pd(inner, ar2, s1);
    const __m512d losum = _mm512_add_pd(
        _mm512_add_pd(_mm512_add_pd(lo1, lo2), lo3), lo4);
    const __m512d lo = _mm512_fmadd_pd(ar3, q, losum);
    const __m512d yhi = _mm512_add_pd(hi, lo);
    const __m512d ylo = _mm512_add_pd(_mm512_sub_pd(hi, yhi), lo);

    // e = y · log(x)
    const __m512d ehi = _mm512_mul_pd(yv, yhi);
    const __m512d elo =
        _mm512_fmadd_pd(yv, ylo, _mm512_fmsub_pd(yv, yhi, ehi));

    // exp path
    const __m512i abstop = _mm512_and_si512(
        _mm512_srli_epi64(_mm512_castpd_si512(ehi), 52), abstop_mask);
    bad |= _mm512_cmp_epu64_mask(_mm512_sub_epi64(abstop, abstop_base),
                                 abstop_span, _MM_CMPINT_NLT);

    __m512d kd2 = _mm512_fmadd_pd(ehi, invln2n, shift);
    const __m512i ki = _mm512_castpd_si512(kd2);
    kd2 = _mm512_sub_pd(kd2, shift);
    __m512d rr = _mm512_fmadd_pd(kd2, negln2hi, ehi);
    rr = _mm512_fmadd_pd(kd2, negln2lo, rr);
    rr = _mm512_add_pd(elo, rr);
    const __m512i eidx = _mm512_slli_epi64(_mm512_and_si512(ki, mask7f), 1);
    const __m512i sbits = _mm512_add_epi64(
        _mm512_i64gather_epi64(_mm512_add_epi64(eidx, one64), exptab, 8),
        _mm512_slli_epi64(ki, 45));
    const __m512d tail =
        _mm512_castsi512_pd(_mm512_i64gather_epi64(eidx, exptab, 8));
    const __m512d sa = _mm512_fmadd_pd(c3, rr, c2);
    const __m512d t = _mm512_add_pd(rr, tail);
    const __m512d rr2 = _mm512_mul_pd(rr, rr);
    const __m512d sb = _mm512_fmadd_pd(c5, rr, c4);
    const __m512d u = _mm512_fmadd_pd(sa, rr2, t);
    const __m512d rr4 = _mm512_mul_pd(rr2, rr2);
    const __m512d poly = _mm512_fmadd_pd(sb, rr4, u);
    const __m512d scale = _mm512_castsi512_pd(sbits);
    const __m512d res = _mm512_fmadd_pd(poly, scale, scale);

    _mm512_storeu_pd(out + i, res);
    if (bad != 0) {
      for (int lane = 0; lane < 8; ++lane) {
        if ((bad & (1U << lane)) != 0) {
          out[i + static_cast<std::size_t>(lane)] =
              std::pow(x[i + static_cast<std::size_t>(lane)], y);
        }
      }
    }
  }
  if (i < n) pow_n_scalar(x + i, out + i, n - i, y);
}

}  // namespace lazyckpt::stats::detail

#endif  // x86-64
