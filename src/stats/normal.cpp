#include "stats/normal.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/special.hpp"

namespace lazyckpt::stats {

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(std::isfinite(mu), "Normal mu must be finite");
  require_positive(sigma, "Normal sigma");
}

double Normal::pdf(double x) const {
  return normal_pdf((x - mu_) / sigma_) / sigma_;
}

double Normal::cdf(double x) const { return normal_cdf((x - mu_) / sigma_); }

double Normal::quantile(double p) const {
  return mu_ + sigma_ * normal_quantile(p);
}

Sampler Normal::sampler() const { return Sampler::normal(mu_, sigma_); }

void Normal::cdf_n(std::span<const double> xs, std::span<double> out) const {
  require(xs.size() == out.size(), "cdf_n spans must have equal size");
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = cdf(xs[i]);
}

DistributionPtr Normal::clone() const {
  return std::make_unique<Normal>(*this);
}

}  // namespace lazyckpt::stats
