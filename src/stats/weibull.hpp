#pragma once

/// \file weibull.hpp
/// \brief Weibull distribution — the paper's empirically best-fitting model
/// of failure inter-arrival times on leadership-class systems (Sec. 4).
///
/// Shape k < 1 produces a decreasing hazard rate: failures cluster on the
/// heels of previous failures ("temporal locality"), which is exactly the
/// property the iLazy policy exploits.

#include <span>

#include <string>
#include "stats/distribution.hpp"
#include "stats/sampler.hpp"

namespace lazyckpt::stats {

/// Weibull(shape k, scale λ): F(x) = 1 - e^{-(x/λ)^k} for x >= 0.
/// Mean = λ Γ(1 + 1/k); hazard h(x) = (k/λ)(x/λ)^{k-1}.
class Weibull final : public Distribution {
 public:
  /// Construct from shape k > 0 and scale λ > 0.
  Weibull(double shape, double scale);

  /// Construct the Weibull with the given shape whose mean equals `mtbf`
  /// hours — the paper's construction for Fig. 12 ("we determine λ using a
  /// Γ function for k = 0.6 such that the MTBF ... remains the same").
  static Weibull from_mtbf_and_shape(double mtbf, double shape);

  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double hazard(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override { return "weibull"; }
  [[nodiscard]] Sampler sampler() const override;
  void cdf_n(std::span<const double> xs,
             std::span<double> out) const override;
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double shape_;
  double scale_;
};

}  // namespace lazyckpt::stats
