/// \file exact_pow_avx2.cpp
/// \brief 4-lane AVX2+FMA kernel of the vendored pow (exact_pow.hpp).
///
/// A straight lane-parallel transcription of pow_core in exact_pow.cpp:
/// same tables, same fusion schedule, one intrinsic per rounding point.
/// This translation unit is compiled with -mavx2 -mfma (and
/// -ffp-contract=off, so the compiler cannot merge the explicitly
/// separate mul/add pairs into extra FMAs); the dispatcher only calls in
/// here after __builtin_cpu_supports("avx2")/( "fma") and after the
/// startup probe verified the kernel bitwise against std::pow.
///
/// AVX2 has no 64-bit arithmetic shift and no int64→double convert, so
/// the exponent extraction sign-extends through xor/sub and the k→double
/// conversion goes through the 1.5·2^52 magic-constant trick — both
/// exact for the |k| ≤ 2100 exponents that survive the domain mask.
/// Out-of-domain lanes (subnormal x, |y·log x| too large) still run the
/// vector arithmetic on bounded table indices — the results are garbage
/// but trap-free — and are then overwritten from std::pow.

#if defined(__x86_64__) || defined(_M_X64)

#include <cstddef>
#include <cstdint>
#include <immintrin.h>

#include <cmath>
#include <cstring>

#include "stats/exact_pow.hpp"
#include "stats/exact_pow_data.hpp"

namespace lazyckpt::stats::detail {

namespace {

inline double table_double(std::uint64_t bits) noexcept {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

constexpr std::uint64_t kOff = 0x3fe6955500000000ULL;
constexpr std::uint64_t kMagic = 0x4338000000000000ULL;  // 1.5 · 2^52

}  // namespace

void pow_n_avx2(const double* x, double* out, std::size_t n, double y) {
  std::uint64_t iy;
  std::memcpy(&iy, &y, sizeof(iy));
  const auto topy = static_cast<std::uint32_t>(iy >> 52) & 0x7ff;
  if (topy - 0x3be >= 0x80) {
    // y outside the grid the main path handles: every lane would fall
    // back anyway, so skip the vector work entirely.
    pow_n_scalar(x, out, n, y);
    return;
  }

  const auto* logtab = reinterpret_cast<const long long*>(&kPowLogTab[0][0]);
  const auto* exptab = reinterpret_cast<const long long*>(&kExpTab[0]);

  const __m256i off = _mm256_set1_epi64x(static_cast<long long>(kOff));
  const __m256i magic_i = _mm256_set1_epi64x(static_cast<long long>(kMagic));
  const __m256d magic_d = _mm256_set1_pd(0x1.8p52);
  const __m256i mask7f = _mm256_set1_epi64x(0x7f);
  const __m256i exp_mask = _mm256_set1_epi64x(
      static_cast<long long>(0xfffULL << 52));
  const __m256i one64 = _mm256_set1_epi64x(1);
  const __m256i sext = _mm256_set1_epi64x(0x800);
  const __m256i topx_max = _mm256_set1_epi64x(0x7fe);
  const __m256i abstop_mask = _mm256_set1_epi64x(0x7ff);
  const __m256i abstop_lo = _mm256_set1_epi64x(0x3c9);
  const __m256i abstop_hi = _mm256_set1_epi64x(0x407);

  const __m256d yv = _mm256_set1_pd(y);
  const __m256d neg_one = _mm256_set1_pd(-1.0);
  const __m256d ln2hi = _mm256_set1_pd(table_double(kPowLn2Hi));
  const __m256d ln2lo = _mm256_set1_pd(table_double(kPowLn2Lo));
  const __m256d a0 = _mm256_set1_pd(table_double(kPowLogPoly[0]));
  const __m256d a1 = _mm256_set1_pd(table_double(kPowLogPoly[1]));
  const __m256d a2 = _mm256_set1_pd(table_double(kPowLogPoly[2]));
  const __m256d a3 = _mm256_set1_pd(table_double(kPowLogPoly[3]));
  const __m256d a4 = _mm256_set1_pd(table_double(kPowLogPoly[4]));
  const __m256d a5 = _mm256_set1_pd(table_double(kPowLogPoly[5]));
  const __m256d a6 = _mm256_set1_pd(table_double(kPowLogPoly[6]));
  const __m256d invln2n = _mm256_set1_pd(table_double(kExpInvLn2N));
  const __m256d negln2hi = _mm256_set1_pd(table_double(kExpNegLn2HiN));
  const __m256d negln2lo = _mm256_set1_pd(table_double(kExpNegLn2LoN));
  const __m256d shift = _mm256_set1_pd(table_double(kExpShift));
  const __m256d c2 = _mm256_set1_pd(table_double(kExpPoly[0]));
  const __m256d c3 = _mm256_set1_pd(table_double(kExpPoly[1]));
  const __m256d c4 = _mm256_set1_pd(table_double(kExpPoly[2]));
  const __m256d c5 = _mm256_set1_pd(table_double(kExpPoly[3]));

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256i ix = _mm256_castpd_si256(xv);
    const __m256i topx = _mm256_srli_epi64(ix, 52);
    __m256i invalid = _mm256_or_si256(_mm256_cmpgt_epi64(one64, topx),
                                      _mm256_cmpgt_epi64(topx, topx_max));

    // log path
    const __m256i tmp = _mm256_sub_epi64(ix, off);
    const __m256i row = _mm256_and_si256(_mm256_srli_epi64(tmp, 45), mask7f);
    const __m256i row3 =
        _mm256_add_epi64(_mm256_add_epi64(row, row), row);
    const __m256i ksh = _mm256_srli_epi64(tmp, 52);
    const __m256i k64 =
        _mm256_sub_epi64(_mm256_xor_si256(ksh, sext), sext);
    const __m256d kd = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_add_epi64(k64, magic_i)), magic_d);
    const __m256i iz = _mm256_sub_epi64(ix, _mm256_and_si256(tmp, exp_mask));
    const __m256d z = _mm256_castsi256_pd(iz);
    const __m256d invc =
        _mm256_castsi256_pd(_mm256_i64gather_epi64(logtab, row3, 8));
    const __m256d logc = _mm256_castsi256_pd(_mm256_i64gather_epi64(
        logtab, _mm256_add_epi64(row3, one64), 8));
    const __m256d logctail = _mm256_castsi256_pd(_mm256_i64gather_epi64(
        logtab, _mm256_add_epi64(row3, _mm256_set1_epi64x(2)), 8));

    const __m256d r = _mm256_fmadd_pd(z, invc, neg_one);
    const __m256d t1 = _mm256_fmadd_pd(kd, ln2hi, logc);
    const __m256d lo1 = _mm256_fmadd_pd(kd, ln2lo, logctail);
    const __m256d t2 = _mm256_add_pd(r, t1);
    const __m256d lo2 = _mm256_add_pd(_mm256_sub_pd(t1, t2), r);
    const __m256d ar = _mm256_mul_pd(a0, r);
    const __m256d ar2 = _mm256_mul_pd(r, ar);
    const __m256d ar3 = _mm256_mul_pd(r, ar2);
    const __m256d lo3 = _mm256_fmsub_pd(ar, r, ar2);
    const __m256d hi = _mm256_add_pd(t2, ar2);
    const __m256d lo4 = _mm256_add_pd(_mm256_sub_pd(t2, hi), ar2);
    const __m256d s1 = _mm256_fmadd_pd(a2, r, a1);
    const __m256d s2 = _mm256_fmadd_pd(a4, r, a3);
    const __m256d s3 = _mm256_fmadd_pd(a6, r, a5);
    const __m256d inner = _mm256_fmadd_pd(s3, ar2, s2);
    const __m256d q = _mm256_fmadd_pd(inner, ar2, s1);
    const __m256d losum = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(lo1, lo2), lo3), lo4);
    const __m256d lo = _mm256_fmadd_pd(ar3, q, losum);
    const __m256d yhi = _mm256_add_pd(hi, lo);
    const __m256d ylo = _mm256_add_pd(_mm256_sub_pd(hi, yhi), lo);

    // e = y · log(x)
    const __m256d ehi = _mm256_mul_pd(yv, yhi);
    const __m256d elo =
        _mm256_fmadd_pd(yv, ylo, _mm256_fmsub_pd(yv, yhi, ehi));

    // exp path
    const __m256i abstop = _mm256_and_si256(
        _mm256_srli_epi64(_mm256_castpd_si256(ehi), 52), abstop_mask);
    invalid = _mm256_or_si256(
        invalid, _mm256_or_si256(_mm256_cmpgt_epi64(abstop_lo, abstop),
                                 _mm256_cmpgt_epi64(abstop, abstop_hi)));

    __m256d kd2 = _mm256_fmadd_pd(ehi, invln2n, shift);
    const __m256i ki = _mm256_castpd_si256(kd2);
    kd2 = _mm256_sub_pd(kd2, shift);
    __m256d rr = _mm256_fmadd_pd(kd2, negln2hi, ehi);
    rr = _mm256_fmadd_pd(kd2, negln2lo, rr);
    rr = _mm256_add_pd(elo, rr);
    const __m256i eidx =
        _mm256_slli_epi64(_mm256_and_si256(ki, mask7f), 1);
    const __m256i sbits = _mm256_add_epi64(
        _mm256_i64gather_epi64(exptab, _mm256_add_epi64(eidx, one64), 8),
        _mm256_slli_epi64(ki, 45));
    const __m256d tail =
        _mm256_castsi256_pd(_mm256_i64gather_epi64(exptab, eidx, 8));
    const __m256d sa = _mm256_fmadd_pd(c3, rr, c2);
    const __m256d t = _mm256_add_pd(rr, tail);
    const __m256d rr2 = _mm256_mul_pd(rr, rr);
    const __m256d sb = _mm256_fmadd_pd(c5, rr, c4);
    const __m256d u = _mm256_fmadd_pd(sa, rr2, t);
    const __m256d rr4 = _mm256_mul_pd(rr2, rr2);
    const __m256d poly = _mm256_fmadd_pd(sb, rr4, u);
    const __m256d scale = _mm256_castsi256_pd(sbits);
    const __m256d res = _mm256_fmadd_pd(poly, scale, scale);

    _mm256_storeu_pd(out + i, res);
    const int bad = _mm256_movemask_pd(_mm256_castsi256_pd(invalid));
    if (bad != 0) {
      for (int lane = 0; lane < 4; ++lane) {
        if ((bad & (1 << lane)) != 0) {
          out[i + static_cast<std::size_t>(lane)] =
              std::pow(x[i + static_cast<std::size_t>(lane)], y);
        }
      }
    }
  }
  if (i < n) pow_n_scalar(x + i, out + i, n - i, y);
}

}  // namespace lazyckpt::stats::detail

#endif  // x86-64
