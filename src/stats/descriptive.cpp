#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lazyckpt::stats {

double mean(std::span<const double> values) {
  require(!values.empty(), "mean of an empty sample");
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  require(values.size() >= 2, "variance needs at least two samples");
  const double m = mean(values);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += (v - m) * (v - m);
  return sum_sq / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double min_value(std::span<const double> values) {
  require(!values.empty(), "min of an empty sample");
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  require(!values.empty(), "max of an empty sample");
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double p) {
  require(!values.empty(), "percentile of an empty sample");
  require(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto below = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(below);
  if (below + 1 >= sorted.size()) return sorted.back();
  return sorted[below] * (1.0 - frac) + sorted[below + 1] * frac;
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

MovingAverage::MovingAverage(std::size_t window) : ring_(window, 0.0) {
  require(window >= 1, "MovingAverage window must be >= 1");
}

}  // namespace lazyckpt::stats
