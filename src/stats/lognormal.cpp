#include "stats/lognormal.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/special.hpp"

namespace lazyckpt::stats {

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(std::isfinite(mu), "LogNormal mu must be finite");
  require_positive(sigma, "LogNormal sigma");
}

double LogNormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return normal_pdf(z) / (x * sigma_);
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

Sampler LogNormal::sampler() const { return Sampler::lognormal(mu_, sigma_); }

void LogNormal::cdf_n(std::span<const double> xs,
                      std::span<double> out) const {
  require(xs.size() == out.size(), "cdf_n spans must have equal size");
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = cdf(xs[i]);
}

DistributionPtr LogNormal::clone() const {
  return std::make_unique<LogNormal>(*this);
}

}  // namespace lazyckpt::stats
