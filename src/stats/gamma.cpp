#include "stats/gamma.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/fp.hpp"
#include "stats/special.hpp"

namespace lazyckpt::stats {

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  require_positive(shape, "Gamma shape");
  require_positive(scale, "Gamma scale");
}

Gamma Gamma::from_mtbf_and_shape(double mtbf, double shape) {
  require_positive(mtbf, "Gamma MTBF");
  require_positive(shape, "Gamma shape");
  return Gamma(shape, mtbf / shape);
}

double Gamma::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (fp::is_zero(x)) {
    if (shape_ > 1.0) return 0.0;
    if (fp::exact_eq(shape_, 1.0)) return 1.0 / scale_;
    x = 1e-12 * scale_;  // density diverges at 0 for shape < 1
  }
  const double log_pdf = (shape_ - 1.0) * std::log(x) - x / scale_ -
                         std::lgamma(shape_) - shape_ * std::log(scale_);
  return std::exp(log_pdf);
}

double Gamma::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(shape_, x / scale_);
}

double Gamma::quantile(double p) const {
  require(p > 0.0 && p < 1.0, "Gamma quantile requires p in (0, 1)");
  // Bracket: the cdf is monotone; expand hi until it covers p.
  double lo = 0.0;
  double hi = mean();
  while (cdf(hi) < p) {
    hi *= 2.0;
    require(hi < 1e300, "Gamma quantile failed to bracket");
  }
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-13 * hi) break;
  }
  return 0.5 * (lo + hi);
}

void Gamma::cdf_n(std::span<const double> xs, std::span<double> out) const {
  require(xs.size() == out.size(), "cdf_n spans must have equal size");
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = cdf(xs[i]);
}

DistributionPtr Gamma::clone() const { return std::make_unique<Gamma>(*this); }

}  // namespace lazyckpt::stats
