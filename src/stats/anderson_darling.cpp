#include "stats/anderson_darling.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/fp.hpp"

namespace lazyckpt::stats {

double ad_statistic(std::span<const double> samples,
                    const Distribution& candidate) {
  require(!samples.empty(), "ad_statistic needs samples");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const auto nd = static_cast<double>(n);

  const auto clamped_cdf = [&](double x) {
    return std::clamp(candidate.cdf(x), 1e-12, 1.0 - 1e-12);
  };

  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double weight = 2.0 * static_cast<double>(i) + 1.0;
    sum += weight * (std::log(clamped_cdf(sorted[i])) +
                     std::log1p(-clamped_cdf(sorted[n - 1 - i])));
  }
  return -nd - sum / nd;
}

double ad_critical_value(double alpha) {
  if (fp::exact_eq(alpha, 0.10)) return 1.933;
  if (fp::exact_eq(alpha, 0.05)) return 2.492;
  if (fp::exact_eq(alpha, 0.01)) return 3.857;
  throw InvalidArgument("ad_critical_value: unsupported alpha");
}

AdResult ad_test(std::span<const double> samples,
                 const Distribution& candidate, double alpha) {
  AdResult result;
  result.distribution_name = candidate.name();
  result.a_squared = ad_statistic(samples, candidate);
  result.critical_value = ad_critical_value(alpha);
  result.rejected = result.a_squared > result.critical_value;
  return result;
}

}  // namespace lazyckpt::stats
