#include "stats/exponential.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lazyckpt::stats {

Exponential::Exponential(double rate) : rate_(rate) {
  require_positive(rate, "Exponential rate");
}

Exponential Exponential::from_mean(double mtbf) {
  require_positive(mtbf, "Exponential mean");
  return Exponential(1.0 / mtbf);
}

double Exponential::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return rate_ * std::exp(-rate_ * x);
}

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-rate_ * x);
}

double Exponential::quantile(double p) const {
  require(p > 0.0 && p < 1.0, "Exponential quantile requires p in (0, 1)");
  return -std::log1p(-p) / rate_;
}

double Exponential::hazard(double x) const {
  return x < 0.0 ? 0.0 : rate_;  // memoryless: constant failure rate
}

Sampler Exponential::sampler() const { return Sampler::exponential(rate_); }

void Exponential::cdf_n(std::span<const double> xs,
                        std::span<double> out) const {
  require(xs.size() == out.size(), "cdf_n spans must have equal size");
  // cdf() devirtualizes here (the class is final), so the batch pays one
  // virtual call instead of xs.size() of them.
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = cdf(xs[i]);
}

DistributionPtr Exponential::clone() const {
  return std::make_unique<Exponential>(*this);
}

}  // namespace lazyckpt::stats
