#pragma once

/// \file ecdf.hpp
/// \brief Empirical cumulative distribution function.

#include <span>
#include <vector>

namespace lazyckpt::stats {

/// Empirical CDF of a sample; O(n log n) build, O(log n) evaluation.
class Ecdf {
 public:
  /// Requires a non-empty sample.
  explicit Ecdf(std::span<const double> samples);

  /// F_n(x) = (#samples <= x) / n.
  [[nodiscard]] double operator()(double x) const noexcept;

  /// i-th smallest sample (0-based).
  [[nodiscard]] double order_statistic(std::size_t i) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

}  // namespace lazyckpt::stats
