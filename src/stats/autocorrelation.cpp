#include "stats/autocorrelation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/fp.hpp"
#include "stats/descriptive.hpp"

namespace lazyckpt::stats {

double autocorrelation(std::span<const double> series, std::size_t lag) {
  require(lag >= 1, "autocorrelation needs lag >= 1");
  require(series.size() > lag, "autocorrelation needs series.size() > lag");
  const double m = mean(series);
  double denom = 0.0;
  for (const double x : series) denom += (x - m) * (x - m);
  require(denom > 0.0, "autocorrelation of a constant series");
  double numer = 0.0;
  for (std::size_t i = 0; i + lag < series.size(); ++i) {
    numer += (series[i] - m) * (series[i + lag] - m);
  }
  return numer / denom;
}

std::vector<double> autocorrelations(std::span<const double> series,
                                     std::size_t max_lag) {
  require(max_lag >= 1, "autocorrelations needs max_lag >= 1");
  std::vector<double> result;
  result.reserve(max_lag);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    result.push_back(autocorrelation(series, lag));
  }
  return result;
}

double coefficient_of_variation(std::span<const double> series) {
  const double m = mean(series);
  require(!fp::is_zero(m), "coefficient_of_variation: zero mean");
  return stddev(series) / std::abs(m);
}

double index_of_dispersion(std::span<const double> gaps,
                           double window_hours) {
  require_positive(window_hours, "window_hours");
  require(!gaps.empty(), "index_of_dispersion needs gaps");

  // Rebuild event times from the gap series, then count per window.
  double span = 0.0;
  for (const double g : gaps) span += g;
  const auto windows = static_cast<std::size_t>(span / window_hours);
  require(windows >= 2, "index_of_dispersion needs at least 2 full windows");

  std::vector<double> counts(windows, 0.0);
  double t = 0.0;
  for (const double g : gaps) {
    t += g;
    const auto w = static_cast<std::size_t>(t / window_hours);
    if (w < windows) counts[w] += 1.0;
  }
  const double m = mean(counts);
  require(m > 0.0, "index_of_dispersion: no events inside windows");
  return variance(counts) / m;
}

}  // namespace lazyckpt::stats
