#pragma once

/// \file autocorrelation.hpp
/// \brief Serial-dependence diagnostics for failure inter-arrival series.
///
/// The paper models failures as a renewal process (i.i.d. gaps).  Real logs
/// can carry serial correlation — storms of short gaps — which these
/// diagnostics quantify: lag-k autocorrelation of the gap series, the
/// coefficient of variation (CV > 1 ⇒ burstier than Poisson), and the
/// index of dispersion of counts.

#include <cstddef>
#include <span>
#include <vector>

namespace lazyckpt::stats {

/// Lag-k sample autocorrelation of `series`.  Requires series.size() > k
/// and a non-constant series.
double autocorrelation(std::span<const double> series, std::size_t lag);

/// First `max_lag` autocorrelations (lags 1..max_lag).
std::vector<double> autocorrelations(std::span<const double> series,
                                     std::size_t max_lag);

/// Coefficient of variation sd/mean.  Requires n >= 2 and mean != 0.
/// Exponential gaps give CV = 1; CV > 1 indicates temporal clustering.
double coefficient_of_variation(std::span<const double> series);

/// Index of dispersion of counts: split the event timeline (given by gap
/// series) into windows of `window_hours` and return var/mean of the
/// per-window event counts.  1 for a Poisson process, > 1 for clustered
/// failures.  Requires at least 2 full windows.
double index_of_dispersion(std::span<const double> gaps, double window_hours);

}  // namespace lazyckpt::stats
