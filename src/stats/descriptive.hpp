#pragma once

/// \file descriptive.hpp
/// \brief Descriptive statistics and moving averages.
///
/// The moving average is the estimator the paper's "dynamic OCI" strategy
/// uses over observed failure inter-arrival times (Sec. 6.1).

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace lazyckpt::stats {

/// Arithmetic mean.  Requires a non-empty sample.
double mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator).  Requires n >= 2.
double variance(std::span<const double> values);

/// Sample standard deviation.  Requires n >= 2.
double stddev(std::span<const double> values);

/// Minimum / maximum.  Require non-empty samples.
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100].  Requires non-empty.
double percentile(std::span<const double> values, double p);

/// Median (50th percentile).
double median(std::span<const double> values);

/// Fixed-window moving average used by the dynamic-OCI MTBF estimator.
/// Until the window fills, the average is taken over what has been seen.
class MovingAverage {
 public:
  /// Requires window >= 1.
  explicit MovingAverage(std::size_t window);

  /// Fold in an observation.
  void add(double value);

  /// Current average.  Returns `fallback` before any observation arrives.
  [[nodiscard]] double value_or(double fallback) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return window_values_.empty(); }
  [[nodiscard]] std::size_t count() const noexcept {
    return window_values_.size();
  }

 private:
  std::size_t window_;
  std::deque<double> window_values_;
  double sum_ = 0.0;
};

}  // namespace lazyckpt::stats
