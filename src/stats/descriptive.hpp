#pragma once

/// \file descriptive.hpp
/// \brief Descriptive statistics and moving averages.
///
/// The moving average is the estimator the paper's "dynamic OCI" strategy
/// uses over observed failure inter-arrival times (Sec. 6.1).

#include <cstddef>
#include <span>
#include <vector>

namespace lazyckpt::stats {

/// Arithmetic mean.  Requires a non-empty sample.
double mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator).  Requires n >= 2.
double variance(std::span<const double> values);

/// Sample standard deviation.  Requires n >= 2.
double stddev(std::span<const double> values);

/// Minimum / maximum.  Require non-empty samples.
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100].  Requires non-empty.
double percentile(std::span<const double> values, double p);

/// Median (50th percentile).
double median(std::span<const double> values);

/// Fixed-window moving average used by the dynamic-OCI MTBF estimator.
/// Until the window fills, the average is taken over what has been seen.
/// Backed by a ring buffer sized once in the constructor: the simulator
/// folds in an observation per failure inside its event loop, which must
/// stay allocation-free.  The running sum is updated add-then-subtract in
/// the same order the historical deque implementation used, so the
/// estimates are bit-identical.
class MovingAverage {
 public:
  /// Requires window >= 1.
  explicit MovingAverage(std::size_t window);

  /// Fold in an observation.
  void add(double value) {
    sum_ += value;
    if (count_ < ring_.size()) {
      ring_[count_++] = value;
    } else {
      sum_ -= ring_[head_];
      ring_[head_] = value;
      head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    }
  }

  /// Current average.  Returns `fallback` before any observation arrives.
  /// Inline: the simulator reads this on every policy-context refresh.
  [[nodiscard]] double value_or(double fallback) const noexcept {
    if (count_ == 0) return fallback;
    return sum_ / static_cast<double>(count_);
  }

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  std::vector<double> ring_;  ///< capacity == window, fixed at construction
  std::size_t head_ = 0;      ///< oldest element once the window is full
  std::size_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace lazyckpt::stats
