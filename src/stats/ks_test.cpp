#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "stats/ecdf.hpp"

namespace lazyckpt::stats {

double ks_statistic(std::span<const double> samples,
                    const Distribution& candidate) {
  require(!samples.empty(), "ks_statistic needs samples");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());

  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = candidate.cdf(sorted[i]);
    const double above = static_cast<double>(i + 1) / n - f;  // D+
    const double below = f - static_cast<double>(i) / n;      // D-
    d = std::max({d, above, below});
  }
  return d;
}

double ks_critical_value(std::size_t n, double alpha) {
  require(n >= 1, "ks_critical_value needs n >= 1");
  double c = 0.0;
  if (alpha == 0.10) {
    c = 1.224;
  } else if (alpha == 0.05) {
    c = 1.358;
  } else if (alpha == 0.025) {
    c = 1.480;
  } else if (alpha == 0.01) {
    c = 1.628;
  } else {
    throw InvalidArgument("ks_critical_value: unsupported alpha");
  }
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  return c / (sqrt_n + 0.12 + 0.11 / sqrt_n);  // Stephens (1974)
}

double ks_p_value(double d_statistic, std::size_t n) {
  require(n >= 1, "ks_p_value needs n >= 1");
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double lambda =
      (sqrt_n + 0.12 + 0.11 / sqrt_n) * std::max(d_statistic, 0.0);
  // Kolmogorov series Q(λ) = 2 Σ (-1)^{j-1} e^{-2 j² λ²}.  The series
  // converges too slowly for tiny λ, where Q is 1 to machine precision.
  if (lambda < 0.04) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> samples,
                 const Distribution& candidate, double alpha) {
  KsResult result;
  result.distribution_name = candidate.name();
  result.d_statistic = ks_statistic(samples, candidate);
  result.critical_value = ks_critical_value(samples.size(), alpha);
  result.p_value = ks_p_value(result.d_statistic, samples.size());
  result.rejected = result.d_statistic > result.critical_value;
  return result;
}

FittedKsResult ks_test_fitted(std::span<const double> samples,
                              const Refit& refit, std::size_t resamples,
                              double alpha, Rng& rng) {
  require(!samples.empty(), "ks_test_fitted needs samples");
  require(static_cast<bool>(refit), "ks_test_fitted needs a refit function");
  require(resamples >= 20, "ks_test_fitted needs resamples >= 20");
  require(alpha > 0.0 && alpha < 1.0,
          "ks_test_fitted alpha must lie in (0, 1)");

  const DistributionPtr fitted = refit(samples);
  require(fitted != nullptr, "refit returned null");

  FittedKsResult result;
  result.d_statistic = ks_statistic(samples, *fitted);

  // Null distribution of D when parameters are re-estimated per sample.
  // Each resample draws its synthetic sample from an RNG stream split from
  // `rng` in index order before dispatch, so the null distribution — and
  // therefore the critical value and p-value — is bit-identical for any
  // LAZYCKPT_THREADS value.
  std::vector<Rng> streams;
  streams.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) streams.push_back(rng.split());

  const auto resampled = parallel_map(
      resamples, [&](std::size_t r) -> std::optional<double> {
        Rng stream = streams[r];
        std::vector<double> synthetic(samples.size());
        for (auto& value : synthetic) value = fitted->sample(stream);
        try {
          const DistributionPtr refitted = refit(synthetic);
          return ks_statistic(synthetic, *refitted);
        } catch (const Error&) {
          // Degenerate synthetic sample; skip.
          return std::nullopt;
        }
      });

  std::vector<double> null_d;
  null_d.reserve(resamples);
  for (const auto& d : resampled) {
    if (d.has_value()) null_d.push_back(*d);
  }
  require(null_d.size() >= resamples / 2,
          "ks_test_fitted: refit failed on most resamples");

  std::sort(null_d.begin(), null_d.end());
  const auto quantile_index = static_cast<std::size_t>(
      (1.0 - alpha) * static_cast<double>(null_d.size() - 1));
  result.critical_value = null_d[quantile_index];

  std::size_t at_least = 0;
  for (const double d : null_d) {
    if (d >= result.d_statistic) ++at_least;
  }
  result.p_value =
      static_cast<double>(at_least) / static_cast<double>(null_d.size());
  result.rejected = result.d_statistic > result.critical_value;
  return result;
}

}  // namespace lazyckpt::stats
