#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/fp.hpp"
#include "common/parallel.hpp"
#include "stats/ecdf.hpp"

namespace lazyckpt::stats {

double ks_statistic_sorted(std::span<const double> sorted,
                           const Distribution& candidate) {
  require(!sorted.empty(), "ks_statistic needs samples");
  // Evaluate the candidate CDF as one batch: a single virtual cdf_n call
  // with a devirtualized inner loop instead of one virtual cdf per point.
  // The buffer is thread-local so bootstrap loops calling this thousands
  // of times reuse one allocation per worker.
  thread_local std::vector<double> cdf_values;
  cdf_values.resize(sorted.size());
  candidate.cdf_n(sorted, cdf_values);

  const auto n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf_values[i];
    const double above = static_cast<double>(i + 1) / n - f;  // D+
    const double below = f - static_cast<double>(i) / n;      // D-
    d = std::max({d, above, below});
  }
  return d;
}

double ks_statistic(std::span<const double> samples,
                    const Distribution& candidate) {
  require(!samples.empty(), "ks_statistic needs samples");
  thread_local std::vector<double> sorted;
  sorted.assign(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return ks_statistic_sorted(sorted, candidate);
}

double ks_critical_value(std::size_t n, double alpha) {
  require(n >= 1, "ks_critical_value needs n >= 1");
  double c = 0.0;
  if (fp::exact_eq(alpha, 0.10)) {
    c = 1.224;
  } else if (fp::exact_eq(alpha, 0.05)) {
    c = 1.358;
  } else if (fp::exact_eq(alpha, 0.025)) {
    c = 1.480;
  } else if (fp::exact_eq(alpha, 0.01)) {
    c = 1.628;
  } else {
    throw InvalidArgument("ks_critical_value: unsupported alpha");
  }
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  return c / (sqrt_n + 0.12 + 0.11 / sqrt_n);  // Stephens (1974)
}

double ks_p_value(double d_statistic, std::size_t n) {
  require(n >= 1, "ks_p_value needs n >= 1");
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double lambda =
      (sqrt_n + 0.12 + 0.11 / sqrt_n) * std::max(d_statistic, 0.0);
  // Kolmogorov series Q(λ) = 2 Σ (-1)^{j-1} e^{-2 j² λ²}.  The series
  // converges too slowly for tiny λ, where Q is 1 to machine precision.
  if (lambda < 0.04) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> samples,
                 const Distribution& candidate, double alpha) {
  KsResult result;
  result.distribution_name = candidate.name();
  result.d_statistic = ks_statistic(samples, candidate);
  result.critical_value = ks_critical_value(samples.size(), alpha);
  result.p_value = ks_p_value(result.d_statistic, samples.size());
  result.rejected = result.d_statistic > result.critical_value;
  return result;
}

FittedKsResult ks_test_fitted(std::span<const double> samples,
                              const Refit& refit, std::size_t resamples,
                              double alpha, Rng& rng) {
  require(!samples.empty(), "ks_test_fitted needs samples");
  require(static_cast<bool>(refit), "ks_test_fitted needs a refit function");
  require(resamples >= 20, "ks_test_fitted needs resamples >= 20");
  require(alpha > 0.0 && alpha < 1.0,
          "ks_test_fitted alpha must lie in (0, 1)");

  const DistributionPtr fitted = refit(samples);
  require(fitted != nullptr, "refit returned null");

  FittedKsResult result;
  result.d_statistic = ks_statistic(samples, *fitted);

  // Null distribution of D when parameters are re-estimated per sample.
  // Each resample draws its synthetic sample from an RNG stream split from
  // `rng` in index order before dispatch, so the null distribution — and
  // therefore the critical value and p-value — is bit-identical for any
  // LAZYCKPT_THREADS value.
  std::vector<Rng> streams;
  streams.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) streams.push_back(rng.split());

  // The fitted model's sampler is snapshotted once (draws bit-identical to
  // fitted->sample) and the synthetic sample lives in a thread-local
  // buffer reused across resamples on the same worker.  The refit sees the
  // sample in generation order — fit arithmetic is order-sensitive in
  // floating point — and the buffer is only sorted afterwards, in place,
  // feeding the sorted-span K-S overload without the copy-and-sort that
  // ks_statistic would repeat.
  const Sampler fitted_sampler = fitted->sampler();
  const auto resampled = parallel_map(
      resamples, [&](std::size_t r) -> std::optional<double> {
        Rng stream = streams[r];
        // Per-worker buffer, moved out of the pool while in use so a
        // re-entrant refit cannot clobber it.
        thread_local std::vector<double> buffer_pool;
        std::vector<double> synthetic = std::move(buffer_pool);
        synthetic.resize(samples.size());
        fitted_sampler.sample_n(stream, synthetic);
        std::optional<double> d;
        try {
          const DistributionPtr refitted = refit(synthetic);
          std::sort(synthetic.begin(), synthetic.end());
          d = ks_statistic_sorted(synthetic, *refitted);
        } catch (const Error&) {
          // Degenerate synthetic sample; skip.
          d = std::nullopt;
        }
        buffer_pool = std::move(synthetic);
        return d;
      });

  std::vector<double> null_d;
  null_d.reserve(resamples);
  for (const auto& d : resampled) {
    if (d.has_value()) null_d.push_back(*d);
  }
  require(null_d.size() >= resamples / 2,
          "ks_test_fitted: refit failed on most resamples");

  std::sort(null_d.begin(), null_d.end());
  const auto quantile_index = static_cast<std::size_t>(
      (1.0 - alpha) * static_cast<double>(null_d.size() - 1));
  result.critical_value = null_d[quantile_index];

  std::size_t at_least = 0;
  for (const double d : null_d) {
    if (d >= result.d_statistic) ++at_least;
  }
  result.p_value =
      static_cast<double>(at_least) / static_cast<double>(null_d.size());
  result.rejected = result.d_statistic > result.critical_value;
  return result;
}

}  // namespace lazyckpt::stats
