#include "stats/weibull.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/fp.hpp"

namespace lazyckpt::stats {

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  require_positive(shape, "Weibull shape");
  require_positive(scale, "Weibull scale");
}

Weibull Weibull::from_mtbf_and_shape(double mtbf, double shape) {
  require_positive(mtbf, "Weibull MTBF");
  require_positive(shape, "Weibull shape");
  const double scale = mtbf / std::tgamma(1.0 + 1.0 / shape);
  return Weibull(shape, scale);
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (fp::is_zero(x)) {
    // Density at zero: 0 for k > 1, 1/λ for k == 1, +inf for k < 1;
    // return the k == 1 limit and a large-but-finite stand-in for k < 1
    // to keep downstream arithmetic well behaved.
    if (shape_ > 1.0) return 0.0;
    if (fp::exact_eq(shape_, 1.0)) return 1.0 / scale_;
    x = 1e-12 * scale_;
  }
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  require(p > 0.0 && p < 1.0, "Weibull quantile requires p in (0, 1)");
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::hazard(double x) const {
  if (x < 0.0) return 0.0;
  if (fp::is_zero(x)) x = 1e-12 * scale_;  // h(0+) diverges for k < 1
  return (shape_ / scale_) * std::pow(x / scale_, shape_ - 1.0);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

Sampler Weibull::sampler() const {
  // 1/shape is precomputed once here; pow(x, 1.0/shape_) and
  // pow(x, inv_shape) see the identical double, so draws stay
  // bit-identical to quantile()'s arithmetic.
  return Sampler::weibull(scale_, 1.0 / shape_);
}

void Weibull::cdf_n(std::span<const double> xs, std::span<double> out) const {
  require(xs.size() == out.size(), "cdf_n spans must have equal size");
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = cdf(xs[i]);
}

DistributionPtr Weibull::clone() const {
  return std::make_unique<Weibull>(*this);
}

}  // namespace lazyckpt::stats
