/// \file exact_pow.cpp
/// \brief Scalar core, runtime probe, and dispatch for the vendored pow.
///
/// The operation schedule below — which products are fused, which are
/// rounded separately — is pinned to what the glibc x86-64 binary
/// actually executes, not just the upstream C source: the compiler fused
/// several multiply-adds when glibc was built (the p·ar³ product into the
/// final low-part add, the 1/ln2 scaling into the shift add, the
/// scale+scale·tmp reconstruction), and reproducing std::pow bitwise
/// means reproducing those exact fusions.  Do not "simplify" arithmetic
/// here; every temporary is a deliberate rounding point.

#include "stats/exact_pow.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/random.hpp"
#include "stats/exact_pow_data.hpp"

namespace lazyckpt::stats {
namespace detail {
namespace {

inline double as_double(std::uint64_t bits) noexcept {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

inline std::uint64_t as_bits(double value) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Top of the mantissa interval map: subtracting this from the bit pattern
// centres the 128-entry log table on x ≈ 0x1.69555p-1 · 2^k.
constexpr std::uint64_t kOff = 0x3fe6955500000000ULL;

}  // namespace

bool pow_core(double x, double y, double* result) noexcept {
  const std::uint64_t ix = as_bits(x);
  const std::uint64_t iy = as_bits(y);
  const auto topx = static_cast<std::uint32_t>(ix >> 52);
  const auto topy = static_cast<std::uint32_t>(iy >> 52) & 0x7ff;
  // Main path only: x normal and positive, |y| in [2^-65, 2^63).
  if (topx - 1 >= 0x7fe) return false;
  if (topy - 0x3be >= 0x80) return false;

  // log(x) in double-double (yhi + ylo), via z = x/c against the table.
  const std::uint64_t tmp = ix - kOff;
  const auto i = static_cast<int>((tmp >> 45) & 0x7f);
  const auto k = static_cast<int>(static_cast<std::int64_t>(tmp) >> 52);
  const std::uint64_t iz = ix - (tmp & (0xfffULL << 52));
  const double z = as_double(iz);
  const double kd = static_cast<double>(k);
  const double invc = as_double(kPowLogTab[i][0]);
  const double logc = as_double(kPowLogTab[i][1]);
  const double logctail = as_double(kPowLogTab[i][2]);
  const double a0 = as_double(kPowLogPoly[0]);
  const double a1 = as_double(kPowLogPoly[1]);
  const double a2 = as_double(kPowLogPoly[2]);
  const double a3 = as_double(kPowLogPoly[3]);
  const double a4 = as_double(kPowLogPoly[4]);
  const double a5 = as_double(kPowLogPoly[5]);
  const double a6 = as_double(kPowLogPoly[6]);
  const double r = __builtin_fma(z, invc, -1.0);
  const double t1 = __builtin_fma(kd, as_double(kPowLn2Hi), logc);
  const double lo1 = __builtin_fma(kd, as_double(kPowLn2Lo), logctail);
  const double t2 = r + t1;
  const double lo2 = (t1 - t2) + r;
  const double ar = a0 * r;
  const double ar2 = r * ar;
  const double ar3 = r * ar2;
  const double lo3 = __builtin_fma(ar, r, -ar2);
  const double hi = t2 + ar2;
  const double lo4 = (t2 - hi) + ar2;
  const double s1 = __builtin_fma(a2, r, a1);
  const double s2 = __builtin_fma(a4, r, a3);
  const double s3 = __builtin_fma(a6, r, a5);
  const double inner = __builtin_fma(s3, ar2, s2);
  const double q = __builtin_fma(inner, ar2, s1);
  const double losum = ((lo1 + lo2) + lo3) + lo4;
  const double lo = __builtin_fma(ar3, q, losum);
  const double yhi = hi + lo;
  const double ylo = (hi - yhi) + lo;

  // e = y · log(x), still double-double (x > 0, so no sign bias).
  const double ehi = y * yhi;
  const double elo = __builtin_fma(y, ylo, __builtin_fma(y, yhi, -ehi));

  // exp(e): table-driven 2^(ki/128) reconstruction.
  const auto abstop = static_cast<std::uint32_t>(as_bits(ehi) >> 52) & 0x7ff;
  // |ehi| must land in [2^-54, 512): below that pow(x,y) ≈ 1 needs the
  // special-cased path, above it overflows/underflows the scale.
  if (abstop - 0x3c9 >= 0x3f) return false;
  const double shift = as_double(kExpShift);
  double kd2 = __builtin_fma(ehi, as_double(kExpInvLn2N), shift);
  const std::uint64_t ki = as_bits(kd2);
  kd2 -= shift;
  double rr = __builtin_fma(kd2, as_double(kExpNegLn2HiN), ehi);
  rr = __builtin_fma(kd2, as_double(kExpNegLn2LoN), rr);
  rr = elo + rr;
  const std::uint64_t idx = 2 * (ki & 0x7f);
  const std::uint64_t sbits = kExpTab[idx + 1] + (ki << 45);
  const double tail = as_double(kExpTab[idx]);
  const double c2 = as_double(kExpPoly[0]);
  const double c3 = as_double(kExpPoly[1]);
  const double c4 = as_double(kExpPoly[2]);
  const double c5 = as_double(kExpPoly[3]);
  const double sa = __builtin_fma(c3, rr, c2);
  const double t = rr + tail;
  const double rr2 = rr * rr;
  const double sb = __builtin_fma(c5, rr, c4);
  const double u = __builtin_fma(sa, rr2, t);
  const double rr4 = rr2 * rr2;
  const double poly = __builtin_fma(sb, rr4, u);
  const double scale = as_double(sbits);
  *result = __builtin_fma(poly, scale, scale);
  return true;
}

void pow_n_scalar(const double* x, double* out, std::size_t n, double y) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!pow_core(x[i], y, &out[i])) out[i] = std::pow(x[i], y);
  }
}

namespace {

void pow_n_libm(const double* x, double* out, std::size_t n, double y) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::pow(x[i], y);
}

/// The engine's pow call sites, as (x-range, y-range) domains:
///  - iLazy interval: x = t/alpha in [1, ~1e6], y = 1 - shape in (0, 1);
///  - Weibull quantile: x = -log1p(-u) in (0, ~40], y = 1/shape > 1;
/// plus a broad magnitude sweep so a libm swap cannot sneak through on
/// inputs the current workloads happen not to exercise.
struct ProbeDomain {
  double x_lo, x_hi;
  double y_lo, y_hi;
};

constexpr ProbeDomain kProbeDomains[] = {
    {1.0, 1.0e6, 1e-3, 0.999},      // iLazy
    {1e-9, 40.0, 1.001, 10.0},      // Weibull quantile
    {1e-12, 1e12, -4.0, 4.0},       // broad sweep
    {0.5, 2.0, -60.0, 60.0},        // near-1 base, large exponent
};

constexpr double kProbeEdges[][2] = {
    {2.0, 0.5},   {10.0, 0.3},          {1e300, 0.5}, {1e-300, 0.5},
    {1.0, 0.4},   {1.0 + 0x1p-52, 7.0}, {3.5, 1.0},   {0x1.fffffffffffffp0, 0.5},
};

}  // namespace

bool exact_pow_selftest(PowNFn kernel) {
  constexpr std::size_t kBatch = 57;  // odd: exercises the SIMD tail
  constexpr int kRounds = 24;
  Rng rng(0x706f775f70726f62ULL);  // fixed probe seed
  double xs[kBatch];
  double want[kBatch];
  double got[kBatch];
  for (const ProbeDomain& domain : kProbeDomains) {
    for (int round = 0; round < kRounds; ++round) {
      const double y = rng.uniform_in(domain.y_lo, domain.y_hi);
      for (double& x : xs) {
        // Log-uniform over the x range so every exponent decade (and so
        // every log-table row) gets visited.
        x = domain.x_lo *
            std::exp(rng.uniform() * std::log(domain.x_hi / domain.x_lo));
      }
      for (std::size_t i = 0; i < kBatch; ++i) want[i] = std::pow(xs[i], y);
      kernel(xs, got, kBatch, y);
      for (std::size_t i = 0; i < kBatch; ++i) {
        if (as_bits(got[i]) != as_bits(want[i])) return false;
      }
      // The scalar core must agree wherever it claims the main path.
      for (std::size_t i = 0; i < kBatch; ++i) {
        double mine = 0.0;
        if (pow_core(xs[i], y, &mine) && as_bits(mine) != as_bits(want[i])) {
          return false;
        }
      }
    }
  }
  for (const auto& edge : kProbeEdges) {
    double got_one = 0.0;
    kernel(&edge[0], &got_one, 1, edge[1]);
    if (as_bits(got_one) != as_bits(std::pow(edge[0], edge[1]))) return false;
  }
  return true;
}

namespace {

struct Dispatch {
  PowNFn fn = &pow_n_libm;
  const char* name = "libm-fallback";
  bool active = false;
};

Dispatch select_kernel() {
  Dispatch d;
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq")) {
    if (exact_pow_selftest(&pow_n_avx512)) {
      return {&pow_n_avx512, "avx512", true};
    }
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    if (exact_pow_selftest(&pow_n_avx2)) {
      return {&pow_n_avx2, "avx2", true};
    }
  }
#endif
  if (exact_pow_selftest(&pow_n_scalar)) {
    return {&pow_n_scalar, "scalar", true};
  }
  return d;
}

const Dispatch& dispatch() {
  static const Dispatch d = select_kernel();
  return d;
}

}  // namespace
}  // namespace detail

void pow_n(const double* x, double* out, std::size_t n, double y) {
  detail::dispatch().fn(x, out, n, y);
}

bool exact_pow_active() noexcept { return detail::dispatch().active; }

const char* exact_pow_kernel() noexcept { return detail::dispatch().name; }

}  // namespace lazyckpt::stats
