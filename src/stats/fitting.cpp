#include "stats/fitting.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace lazyckpt::stats {
namespace {

void require_positive_samples(std::span<const double> samples,
                              const char* who) {
  require(samples.size() >= 2,
          std::string(who) + " needs at least two samples");
  for (const double x : samples) {
    require(std::isfinite(x) && x > 0.0,
            std::string(who) + " requires strictly positive samples");
  }
}

}  // namespace

Exponential fit_exponential(std::span<const double> samples) {
  require(!samples.empty(), "fit_exponential needs samples");
  const double m = mean(samples);
  require_positive(m, "fit_exponential sample mean");
  return Exponential::from_mean(m);
}

Weibull fit_weibull(std::span<const double> samples) {
  require_positive_samples(samples, "fit_weibull");

  const auto n = static_cast<double>(samples.size());
  double mean_log = 0.0;
  for (const double x : samples) mean_log += std::log(x);
  mean_log /= n;

  // Solve g(k) = S1(k)/S0(k) - 1/k - mean_log = 0 where
  // S0 = sum x^k, S1 = sum x^k ln x, S2 = sum x^k (ln x)^2.
  // g'(k) = S2/S0 - (S1/S0)^2 + 1/k^2  > 0, so Newton converges from a
  // reasonable start; we safeguard with bisection-style clamping.
  double k = 1.0;
  // Method-of-moments style initial guess from the coefficient of
  // variation of the logs (Menon's estimator).
  {
    double var_log = 0.0;
    for (const double x : samples) {
      const double d = std::log(x) - mean_log;
      var_log += d * d;
    }
    var_log /= n;
    if (var_log > 1e-12) {
      k = 1.2825498301618641 / std::sqrt(var_log);  // pi/sqrt(6) / sd(log x)
    }
  }
  k = std::min(std::max(k, 1e-3), 1e3);

  bool converged = false;
  for (int iteration = 0; iteration < 200; ++iteration) {
    double s0 = 0.0;
    double s1 = 0.0;
    double s2 = 0.0;
    for (const double x : samples) {
      const double lx = std::log(x);
      const double xk = std::exp(k * lx);  // x^k without pow-domain issues
      s0 += xk;
      s1 += xk * lx;
      s2 += xk * lx * lx;
    }
    const double ratio = s1 / s0;
    const double g = ratio - 1.0 / k - mean_log;
    const double dg = s2 / s0 - ratio * ratio + 1.0 / (k * k);
    double step = g / dg;
    // Clamp to keep k positive and the iteration stable.
    if (step > 0.5 * k) step = 0.5 * k;
    if (step < -2.0 * k) step = -2.0 * k;
    const double next = k - step;
    if (std::abs(next - k) <= 1e-12 * std::max(1.0, k)) {
      k = next;
      converged = true;
      break;
    }
    k = next;
  }
  require(converged && std::isfinite(k) && k > 0.0,
          "fit_weibull: shape iteration failed to converge");

  double s0 = 0.0;
  for (const double x : samples) s0 += std::pow(x, k);
  const double scale = std::pow(s0 / n, 1.0 / k);
  return Weibull(k, scale);
}

LogNormal fit_lognormal(std::span<const double> samples) {
  require_positive_samples(samples, "fit_lognormal");
  const auto n = static_cast<double>(samples.size());
  double mu = 0.0;
  for (const double x : samples) mu += std::log(x);
  mu /= n;
  double var = 0.0;
  for (const double x : samples) {
    const double d = std::log(x) - mu;
    var += d * d;
  }
  var /= n;  // MLE uses n denominator
  require(var > 0.0, "fit_lognormal: degenerate (constant) sample");
  return LogNormal(mu, std::sqrt(var));
}

Gamma fit_gamma(std::span<const double> samples) {
  require_positive_samples(samples, "fit_gamma");
  const auto n = static_cast<double>(samples.size());
  double sample_mean = 0.0;
  double mean_log = 0.0;
  for (const double x : samples) {
    sample_mean += x;
    mean_log += std::log(x);
  }
  sample_mean /= n;
  mean_log /= n;

  // s = ln(mean) - mean(ln x) > 0 unless the sample is constant.
  const double s = std::log(sample_mean) - mean_log;
  require(s > 1e-12, "fit_gamma: degenerate (constant) sample");

  // Minka's closed-form initializer, then Newton on
  // g(a) = ln(a) - psi(a) - s  (g is decreasing in a).
  double a = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
             (12.0 * s);
  for (int iteration = 0; iteration < 100; ++iteration) {
    const double g = std::log(a) - digamma(a) - s;
    // g'(a) = 1/a - psi'(a); approximate psi' by central difference of psi.
    const double h = 1e-6 * a;
    const double trigamma = (digamma(a + h) - digamma(a - h)) / (2.0 * h);
    const double dg = 1.0 / a - trigamma;
    double step = g / dg;
    if (step > 0.5 * a) step = 0.5 * a;
    if (step < -0.5 * a) step = -0.5 * a;
    const double next = a - step;
    if (std::abs(next - a) <= 1e-12 * a) {
      a = next;
      break;
    }
    a = next;
  }
  require(std::isfinite(a) && a > 0.0, "fit_gamma: iteration diverged");
  return Gamma(a, sample_mean / a);
}

Normal fit_normal(std::span<const double> samples) {
  require(samples.size() >= 2, "fit_normal needs at least two samples");
  const double mu = mean(samples);
  const auto n = static_cast<double>(samples.size());
  double var = 0.0;
  for (const double x : samples) var += (x - mu) * (x - mu);
  var /= n;  // MLE
  require(var > 0.0, "fit_normal: degenerate (constant) sample");
  return Normal(mu, std::sqrt(var));
}

}  // namespace lazyckpt::stats
