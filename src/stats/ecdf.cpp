#include "stats/ecdf.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lazyckpt::stats {

Ecdf::Ecdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  require(!sorted_.empty(), "Ecdf needs a non-empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto upper = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(upper - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::order_statistic(std::size_t i) const { return sorted_.at(i); }

}  // namespace lazyckpt::stats
