#pragma once

/// \file anderson_darling.hpp
/// \brief One-sample Anderson–Darling goodness-of-fit test.
///
/// A tail-weighted complement to the K-S test of paper Fig. 7: A² weights
/// deviations in the distribution tails, where failure inter-arrival fits
/// differ most.  Used by the fit-candidate ablation bench.

#include <span>
#include <string>

#include "stats/distribution.hpp"

namespace lazyckpt::stats {

/// Result of an Anderson–Darling test.
struct AdResult {
  std::string distribution_name;
  double a_squared = 0.0;       ///< the A² statistic
  double critical_value = 0.0;  ///< case-0 critical value at the level
  bool rejected = false;
};

/// A² statistic of `samples` against `candidate`.  Requires a non-empty
/// sample; candidate cdf values are clamped away from {0,1} for stability.
double ad_statistic(std::span<const double> samples,
                    const Distribution& candidate);

/// Case-0 (fully specified distribution) critical value.  Supported
/// alpha: 0.10 (1.933), 0.05 (2.492), 0.01 (3.857).
double ad_critical_value(double alpha);

/// Full test at significance `alpha` (default 0.05).
AdResult ad_test(std::span<const double> samples,
                 const Distribution& candidate, double alpha = 0.05);

}  // namespace lazyckpt::stats
