#pragma once

/// \file qq.hpp
/// \brief Quantile–quantile plot data (paper Fig. 8).
///
/// If the sample statistically comes from the candidate distribution, the
/// (sample quantile, theoretical quantile) points fall on the slope-1 line
/// through the origin.  We also compute the QQ correlation coefficient, a
/// scalar summary used by tests and bench output.

#include <span>
#include <vector>

#include "stats/distribution.hpp"

namespace lazyckpt::stats {

/// One point of a QQ plot.
struct QqPoint {
  double sample_quantile = 0.0;       ///< x-axis: i-th order statistic
  double theoretical_quantile = 0.0;  ///< y-axis: F⁻¹((i - 0.5) / n)
};

/// QQ-plot points for `samples` against `candidate` using the Hazen
/// plotting positions (i - 0.5)/n.  Requires a non-empty sample.
std::vector<QqPoint> qq_points(std::span<const double> samples,
                               const Distribution& candidate);

/// Pearson correlation of the QQ points; ~1 indicates a good fit.
/// Requires at least two points with non-degenerate coordinates.
double qq_correlation(std::span<const QqPoint> points);

/// Convenience: correlation of `samples` against `candidate`.
double qq_correlation(std::span<const double> samples,
                      const Distribution& candidate);

}  // namespace lazyckpt::stats
