#pragma once

/// \file normal.hpp
/// \brief Normal distribution — a deliberately poor candidate for failure
/// inter-arrival times, included because the paper's Fig. 7 tests it.

#include <span>

#include <string>
#include "stats/distribution.hpp"
#include "stats/sampler.hpp"

namespace lazyckpt::stats {

/// Normal(μ, σ).
class Normal final : public Distribution {
 public:
  Normal(double mu, double sigma);

  [[nodiscard]] double mu() const noexcept { return mu_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] Sampler sampler() const override;
  [[nodiscard]] double mean() const override { return mu_; }
  [[nodiscard]] std::string name() const override { return "normal"; }
  void cdf_n(std::span<const double> xs,
             std::span<double> out) const override;
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace lazyckpt::stats
