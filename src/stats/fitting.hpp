#pragma once

/// \file fitting.hpp
/// \brief Maximum-likelihood fitting of the four candidate distributions the
/// paper tests against failure logs (Sec. 4.1, Fig. 7).

#include <span>

#include "stats/exponential.hpp"
#include "stats/gamma.hpp"
#include "stats/lognormal.hpp"
#include "stats/normal.hpp"
#include "stats/weibull.hpp"

namespace lazyckpt::stats {

/// MLE exponential fit: rate = 1 / sample mean.  Requires a non-empty,
/// positive-mean sample.
Exponential fit_exponential(std::span<const double> samples);

/// MLE Weibull fit via Newton iteration on the profile-likelihood shape
/// equation; scale follows in closed form.  Requires n >= 2 strictly
/// positive samples that are not all equal.  Throws Error if the iteration
/// fails to converge (pathological data).
Weibull fit_weibull(std::span<const double> samples);

/// MLE log-normal fit: μ, σ are the mean and (MLE, n-denominator) standard
/// deviation of the log sample.  Requires n >= 2 strictly positive samples.
LogNormal fit_lognormal(std::span<const double> samples);

/// MLE normal fit.  Requires n >= 2 samples.
Normal fit_normal(std::span<const double> samples);

/// MLE gamma fit: closed-form shape approximation (Minka) refined by
/// Newton iterations on the digamma likelihood equation; scale in closed
/// form.  Requires n >= 2 strictly positive, non-constant samples.
Gamma fit_gamma(std::span<const double> samples);

}  // namespace lazyckpt::stats
