#include "stats/qq.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lazyckpt::stats {

std::vector<QqPoint> qq_points(std::span<const double> samples,
                               const Distribution& candidate) {
  require(!samples.empty(), "qq_points needs samples");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());

  std::vector<QqPoint> points;
  points.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double p = (static_cast<double>(i) + 0.5) / n;
    points.push_back({sorted[i], candidate.quantile(p)});
  }
  return points;
}

double qq_correlation(std::span<const QqPoint> points) {
  require(points.size() >= 2, "qq_correlation needs at least two points");
  const auto n = static_cast<double>(points.size());
  double mx = 0.0;
  double my = 0.0;
  for (const auto& p : points) {
    mx += p.sample_quantile;
    my += p.theoretical_quantile;
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (const auto& p : points) {
    const double dx = p.sample_quantile - mx;
    const double dy = p.theoretical_quantile - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  require(sxx > 0.0 && syy > 0.0, "qq_correlation: degenerate coordinates");
  return sxy / std::sqrt(sxx * syy);
}

double qq_correlation(std::span<const double> samples,
                      const Distribution& candidate) {
  const auto points = qq_points(samples, candidate);
  return qq_correlation(points);
}

}  // namespace lazyckpt::stats
