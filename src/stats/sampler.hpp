#pragma once

/// \file sampler.hpp
/// \brief Devirtualized variate sampling for the simulation hot path.
///
/// Drawing a failure inter-arrival through the Distribution interface costs
/// two virtual calls per variate (sample → quantile) and recomputes
/// per-distribution constants (the Weibull's 1/shape) on every draw.  A
/// Sampler is a small value object snapshotted from a distribution once per
/// run: it carries the precomputed constants and samples through a single
/// predictable switch instead of the vtable.  Every branch reproduces the
/// corresponding Distribution::sample arithmetic operation-for-operation,
/// so a Sampler draw is bit-identical to the virtual path it replaces —
/// the engine's golden-master tests (tests/test_engine_golden.cpp) pin
/// that contract down.
///
/// Distributions without a specialized branch fall back to the virtual
/// sample() of the distribution they were created from; such a Sampler
/// (and only such a Sampler) must not outlive its distribution.

#include <cmath>
#include <cstdint>
#include <span>

#include "common/random.hpp"
#include "stats/special.hpp"

namespace lazyckpt::stats {

class Distribution;

namespace detail {
/// Out-of-line fallback: forwards to Distribution::sample (virtual).
double sample_generic(const Distribution& dist, Rng& rng);
/// Out-of-line batched Weibull transform: runs the expensive t^(1/k)
/// step through the vectorized bit-exact pow (stats/exact_pow.hpp).
/// `out` already holds the -log1p(-u) values, in draw order.
void weibull_transform_n(std::span<double> out, double scale,
                         double inv_shape);
}  // namespace detail

/// A cheap, copyable sampling kernel snapshotted from a Distribution.
class Sampler {
 public:
  /// Exponential(rate λ): x = -log1p(-u) / λ.
  [[nodiscard]] static Sampler exponential(double rate) noexcept {
    return Sampler(Kind::kExponential, rate, 0.0, nullptr);
  }

  /// Weibull(shape k, scale λ): x = λ · (-log1p(-u))^(1/k).  The caller
  /// passes the precomputed 1/k (`inv_shape`).
  [[nodiscard]] static Sampler weibull(double scale,
                                       double inv_shape) noexcept {
    return Sampler(Kind::kWeibull, scale, inv_shape, nullptr);
  }

  /// LogNormal(μ, σ): x = exp(μ + σ · Φ⁻¹(u)).
  [[nodiscard]] static Sampler lognormal(double mu, double sigma) noexcept {
    return Sampler(Kind::kLogNormal, mu, sigma, nullptr);
  }

  /// Normal(μ, σ): x = μ + σ · Φ⁻¹(u).
  [[nodiscard]] static Sampler normal(double mu, double sigma) noexcept {
    return Sampler(Kind::kNormal, mu, sigma, nullptr);
  }

  /// Fallback: sample through the distribution's virtual interface.
  /// `dist` must outlive the sampler.
  [[nodiscard]] static Sampler generic(const Distribution& dist) noexcept {
    return Sampler(Kind::kGeneric, 0.0, 0.0, &dist);
  }

  /// Draw one variate.  Deterministic in `rng` and bit-identical to
  /// Distribution::sample on the distribution this sampler came from.
  [[nodiscard]] double sample(Rng& rng) const {
    if (kind_ == Kind::kGeneric) return detail::sample_generic(*generic_, rng);
    // Same uniform mapping as Distribution::sample: u in (0, 1] clipped
    // away from 1 for quantile functions that diverge there.
    const double u = draw_uniform(rng);
    switch (kind_) {
      case Kind::kExponential:
        return -std::log1p(-u) / a_;
      case Kind::kWeibull:
        return a_ * std::pow(-std::log1p(-u), b_);
      case Kind::kNormal:
        return a_ + b_ * normal_quantile(u);
      default:  // Kind::kLogNormal
        return std::exp(a_ + b_ * normal_quantile(u));
    }
  }

  /// Batched draw: fills `out` with out.size() consecutive variates, in
  /// the exact order (and with the exact values) of repeated sample()
  /// calls.  The kind dispatch is hoisted out of the per-variate loop,
  /// and the Weibull transform runs its t^(1/k) phase through the
  /// vectorized bit-exact pow — bitwise identical to std::pow, so the
  /// scalar-loop equivalence the tests pin down survives vectorization.
  void sample_n(Rng& rng, std::span<double> out) const {
    switch (kind_) {
      case Kind::kGeneric:
        for (double& value : out) {
          value = detail::sample_generic(*generic_, rng);
        }
        return;
      case Kind::kExponential:
        for (double& value : out) {
          value = -std::log1p(-draw_uniform(rng)) / a_;
        }
        return;
      case Kind::kWeibull:
        // Phase 1 consumes the RNG in draw order; phase 2 is a pure
        // elementwise transform, so batching cannot reorder anything.
        for (double& value : out) value = -std::log1p(-draw_uniform(rng));
        detail::weibull_transform_n(out, a_, b_);
        return;
      case Kind::kNormal:
        for (double& value : out) {
          value = a_ + b_ * normal_quantile(draw_uniform(rng));
        }
        return;
      default:  // Kind::kLogNormal
        for (double& value : out) {
          value = std::exp(a_ + b_ * normal_quantile(draw_uniform(rng)));
        }
        return;
    }
  }

  /// False only for the virtual-dispatch fallback.
  [[nodiscard]] bool devirtualized() const noexcept {
    return kind_ != Kind::kGeneric;
  }

 private:
  enum class Kind : std::uint8_t {
    kExponential,
    kWeibull,
    kLogNormal,
    kNormal,
    kGeneric,
  };

  Sampler(Kind kind, double a, double b, const Distribution* generic) noexcept
      : kind_(kind), a_(a), b_(b), generic_(generic) {}

  /// Same uniform mapping as Distribution::sample: u in (0, 1] clipped
  /// away from 1 for quantile functions that diverge there.
  [[nodiscard]] static double draw_uniform(Rng& rng) {
    double u = rng.uniform_positive();
    if (u >= 1.0) u = 1.0 - 1e-16;
    return u;
  }

  Kind kind_;
  double a_;  ///< rate (exp), scale (weibull), mu (lognormal)
  double b_;  ///< unused (exp), 1/shape (weibull), sigma (lognormal)
  const Distribution* generic_;  ///< non-null only for Kind::kGeneric
};

}  // namespace lazyckpt::stats
