#pragma once

/// \file gamma.hpp
/// \brief Gamma distribution — a fifth inter-arrival candidate beyond the
/// paper's four.  LANL failure studies (Schroeder & Gibson) also test
/// gamma fits, so the goodness-of-fit ablation bench includes it.

#include <span>

#include <string>
#include "stats/distribution.hpp"

namespace lazyckpt::stats {

/// Gamma(shape a, scale θ): f(x) = x^{a−1} e^{−x/θ} / (Γ(a) θ^a), x > 0.
/// Mean = aθ.  Like the Weibull, shape < 1 means a decreasing hazard.
class Gamma final : public Distribution {
 public:
  /// Requires shape > 0 and scale > 0.
  Gamma(double shape, double scale);

  /// The gamma with the given shape whose mean equals `mtbf`.
  static Gamma from_mtbf_and_shape(double mtbf, double shape);

  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  /// Quantile by monotone bisection on the cdf (~1e-12 relative).
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return shape_ * scale_; }
  [[nodiscard]] std::string name() const override { return "gamma"; }
  void cdf_n(std::span<const double> xs,
             std::span<double> out) const override;
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double shape_;
  double scale_;
};

}  // namespace lazyckpt::stats
