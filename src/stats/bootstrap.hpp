#pragma once

/// \file bootstrap.hpp
/// \brief Nonparametric bootstrap confidence intervals.
///
/// Failure logs are one realization of a noisy process; point estimates of
/// the MTBF or the Weibull shape deserve error bars.  Percentile-method
/// bootstrap: resample the data with replacement, recompute the statistic,
/// take the empirical quantiles.

#include <cstddef>
#include <functional>
#include <span>

#include "common/random.hpp"

namespace lazyckpt::stats {

/// A point estimate with its confidence interval.
struct BootstrapInterval {
  double estimate = 0.0;  ///< statistic on the original sample
  double lower = 0.0;     ///< CI lower bound
  double upper = 0.0;     ///< CI upper bound

  [[nodiscard]] double width() const noexcept { return upper - lower; }
};

/// Statistic evaluated on a (re)sample.
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap CI of `statistic` on `samples`.
/// `confidence` in (0, 1), e.g. 0.95; `resamples` >= 10.  Resamples for
/// which the statistic throws are skipped (rare, e.g. a degenerate fit);
/// throws Error if more than half are skipped.
///
/// Resamples run on the shared parallel engine (common/parallel.hpp):
/// each resample draws from its own RNG stream split from `rng` in index
/// order before dispatch, so the interval is bit-identical for any
/// LAZYCKPT_THREADS value and `rng` advances by a fixed amount.
/// `statistic` must be safe to call concurrently on distinct inputs.
BootstrapInterval bootstrap_ci(std::span<const double> samples,
                               const Statistic& statistic,
                               std::size_t resamples, double confidence,
                               Rng& rng);

/// Convenience: CI of the sample mean (for failure gaps, the MTBF).
BootstrapInterval bootstrap_mean_ci(std::span<const double> samples,
                                    std::size_t resamples, double confidence,
                                    Rng& rng);

}  // namespace lazyckpt::stats
