#include "stats/factory.hpp"

#include "common/error.hpp"
#include "stats/exponential.hpp"
#include "stats/lognormal.hpp"
#include "stats/normal.hpp"
#include "stats/weibull.hpp"

namespace lazyckpt::stats {
namespace {

DistributionPtr build_exponential(const keyval::ParsedSpec& spec) {
  spec.require_keys({"mtbf", "rate"});
  const bool has_mtbf = spec.has("mtbf");
  const bool has_rate = spec.has("rate");
  if (has_mtbf == has_rate) {
    throw InvalidArgument("'" + spec.text +
                          "': give exactly one of mtbf= or rate=");
  }
  if (has_mtbf) {
    return std::make_unique<Exponential>(
        Exponential::from_mean(spec.number("mtbf")));
  }
  return std::make_unique<Exponential>(spec.number("rate"));
}

DistributionPtr build_weibull(const keyval::ParsedSpec& spec) {
  spec.require_keys({"mtbf", "scale", "k"});
  const double shape = spec.number("k");
  const bool has_mtbf = spec.has("mtbf");
  const bool has_scale = spec.has("scale");
  if (has_mtbf == has_scale) {
    throw InvalidArgument("'" + spec.text +
                          "': give exactly one of mtbf= or scale=");
  }
  if (has_mtbf) {
    return std::make_unique<Weibull>(
        Weibull::from_mtbf_and_shape(spec.number("mtbf"), shape));
  }
  return std::make_unique<Weibull>(shape, spec.number("scale"));
}

DistributionPtr build_lognormal(const keyval::ParsedSpec& spec) {
  spec.require_keys({"mu", "sigma"});
  return std::make_unique<LogNormal>(spec.number("mu"), spec.number("sigma"));
}

DistributionPtr build_normal(const keyval::ParsedSpec& spec) {
  spec.require_keys({"mean", "sd"});
  return std::make_unique<Normal>(spec.number("mean"), spec.number("sd"));
}

}  // namespace

DistributionRegistry::DistributionRegistry() {
  builders_.emplace("exponential", &build_exponential);
  builders_.emplace("weibull", &build_weibull);
  builders_.emplace("lognormal", &build_lognormal);
  builders_.emplace("normal", &build_normal);
}

DistributionRegistry& DistributionRegistry::instance() {
  static DistributionRegistry registry;
  return registry;
}

void DistributionRegistry::add(const std::string& kind,
                               DistributionBuilder builder) {
  require(builder != nullptr, "DistributionRegistry::add: null builder");
  const auto [it, inserted] = builders_.emplace(kind, builder);
  (void)it;
  if (!inserted) {
    throw InvalidArgument("distribution kind '" + kind +
                          "' is already registered");
  }
}

DistributionPtr DistributionRegistry::make(std::string_view spec) const {
  const keyval::ParsedSpec parsed = keyval::parse_spec(spec);
  const auto it = builders_.find(parsed.kind);
  if (it == builders_.end()) {
    throw InvalidArgument("unknown distribution kind '" + parsed.kind +
                          "' in '" + parsed.text + "'");
  }
  return it->second(parsed);
}

std::vector<std::string> DistributionRegistry::kinds() const {
  std::vector<std::string> out;
  out.reserve(builders_.size());
  for (const auto& [kind, builder] : builders_) {
    (void)builder;
    out.push_back(kind);
  }
  return out;
}

DistributionPtr make_distribution(std::string_view spec) {
  return DistributionRegistry::instance().make(spec);
}

}  // namespace lazyckpt::stats
