#pragma once

/// \file special.hpp
/// \brief Special functions needed by the distribution layer.

namespace lazyckpt::stats {

/// Standard normal cumulative distribution function Φ(x).
double normal_cdf(double x) noexcept;

/// Inverse of the standard normal CDF, Φ⁻¹(p) for p in (0, 1).
/// Throws InvalidArgument outside that open interval.
double normal_quantile(double p);

/// Standard normal density φ(x).
double normal_pdf(double x) noexcept;

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a) for a > 0,
/// x >= 0.  Series expansion for x < a + 1, Lentz continued fraction
/// otherwise (Numerical Recipes scheme); ~1e-14 relative accuracy.
/// Throws InvalidArgument for a <= 0 or x < 0.
double regularized_gamma_p(double a, double x);

/// Digamma function ψ(x) for x > 0 (recurrence + asymptotic series).
/// Throws InvalidArgument for x <= 0.
double digamma(double x);

}  // namespace lazyckpt::stats
