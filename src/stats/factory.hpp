#pragma once

/// \file factory.hpp
/// \brief Construct failure distributions from compact textual specs —
/// the stats-layer sibling of core::make_policy (DESIGN.md §5g).
///
/// Spec grammar (kind plus key=value parameters, common/keyval.hpp):
///   "exponential:mtbf=7.5"        — Exponential::from_mean(7.5)
///   "exponential:rate=0.13"       — Exponential(0.13)
///   "weibull:mtbf=11,k=0.6"       — Weibull::from_mtbf_and_shape(11, 0.6)
///   "weibull:scale=8.6,k=0.6"     — Weibull(0.6, 8.6)
///   "lognormal:mu=1.2,sigma=0.5"  — LogNormal(1.2, 0.5)
///   "normal:mean=10,sd=2"         — Normal(10, 2)
///
/// Kinds live in a registry so extensions (mixtures, empirical fits)
/// plug in without touching this file.  Unknown kinds, unknown keys, and
/// malformed numbers throw InvalidArgument naming the offending token.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/keyval.hpp"
#include "stats/distribution.hpp"

namespace lazyckpt::stats {

/// Builds a distribution from its parsed spec.  Throws InvalidArgument on
/// missing/unknown parameters (spec.text carries the original text for
/// messages).
using DistributionBuilder = DistributionPtr (*)(const keyval::ParsedSpec&);

/// The kind → builder table behind make_distribution.  Builtin kinds
/// (exponential, weibull, lognormal, normal) are registered on first use;
/// extensions add theirs via add().
class DistributionRegistry {
 public:
  /// The process-wide registry.
  static DistributionRegistry& instance();

  /// Register `kind`.  Throws InvalidArgument if it is already taken.
  void add(const std::string& kind, DistributionBuilder builder);

  /// Parse `spec` and build.  Throws InvalidArgument on an unknown kind or
  /// malformed parameters.
  [[nodiscard]] DistributionPtr make(std::string_view spec) const;

  /// Registered kinds in name order (deterministic for --list output).
  [[nodiscard]] std::vector<std::string> kinds() const;

 private:
  DistributionRegistry();
  std::map<std::string, DistributionBuilder, std::less<>> builders_;
};

/// Parse `spec` and build the distribution via the process registry.
/// Throws InvalidArgument on a malformed or unknown spec.
[[nodiscard]] DistributionPtr make_distribution(std::string_view spec);

}  // namespace lazyckpt::stats
