#include "stats/bootstrap.hpp"

#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "stats/descriptive.hpp"

namespace lazyckpt::stats {

BootstrapInterval bootstrap_ci(std::span<const double> samples,
                               const Statistic& statistic,
                               std::size_t resamples, double confidence,
                               Rng& rng) {
  require(!samples.empty(), "bootstrap_ci needs samples");
  require(static_cast<bool>(statistic), "bootstrap_ci needs a statistic");
  require(resamples >= 10, "bootstrap_ci needs resamples >= 10");
  require(confidence > 0.0 && confidence < 1.0,
          "bootstrap_ci confidence must lie in (0, 1)");

  BootstrapInterval result;
  result.estimate = statistic(samples);

  // One pre-split RNG stream per resample, drawn in index order, so the
  // replicate values do not depend on the thread count executing them.
  // The caller's generator advances by exactly 2·resamples outputs either
  // way.
  std::vector<Rng> streams;
  streams.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) streams.push_back(rng.split());

  const auto replicates = parallel_map(
      resamples, [&](std::size_t r) -> std::optional<double> {
        Rng stream = streams[r];
        // One resample buffer per worker thread, reused across
        // replicates.  Moved out of the pool while in use so a statistic
        // that recursively bootstraps on this thread allocates its own
        // buffer instead of clobbering ours.
        thread_local std::vector<double> buffer_pool;
        std::vector<double> resample = std::move(buffer_pool);
        resample.resize(samples.size());
        for (auto& value : resample) {
          value = samples[stream.uniform_index(samples.size())];
        }
        std::optional<double> replicate;
        try {
          replicate = statistic(resample);
        } catch (const Error&) {
          // Degenerate resample (e.g. all-equal values break an MLE); skip.
          replicate = std::nullopt;
        }
        buffer_pool = std::move(resample);
        return replicate;
      });

  std::vector<double> replicate_values;
  replicate_values.reserve(resamples);
  for (const auto& value : replicates) {
    if (value.has_value()) replicate_values.push_back(*value);
  }
  require(replicate_values.size() >= resamples / 2,
          "bootstrap_ci: statistic failed on most resamples");

  const double alpha = 1.0 - confidence;
  result.lower = percentile(replicate_values, 100.0 * (alpha / 2.0));
  result.upper = percentile(replicate_values, 100.0 * (1.0 - alpha / 2.0));
  return result;
}

BootstrapInterval bootstrap_mean_ci(std::span<const double> samples,
                                    std::size_t resamples, double confidence,
                                    Rng& rng) {
  return bootstrap_ci(
      samples, [](std::span<const double> s) { return mean(s); }, resamples,
      confidence, rng);
}

}  // namespace lazyckpt::stats
