#pragma once

/// \file exponential.hpp
/// \brief Exponential distribution — the memoryless baseline failure model
/// assumed by the classic Young/Daly optimal-checkpoint-interval analysis.

#include <span>

#include <string>
#include "stats/distribution.hpp"
#include "stats/sampler.hpp"

namespace lazyckpt::stats {

/// Exponential(rate λ): f(x) = λ e^{-λx} for x >= 0.  Mean (MTBF) = 1/λ.
class Exponential final : public Distribution {
 public:
  /// Construct from rate λ > 0.
  explicit Exponential(double rate);

  /// Construct the exponential whose mean equals `mtbf` hours.
  static Exponential from_mean(double mtbf);

  [[nodiscard]] double rate() const noexcept { return rate_; }

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double hazard(double x) const override;
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] std::string name() const override { return "exponential"; }
  [[nodiscard]] Sampler sampler() const override;
  void cdf_n(std::span<const double> xs,
             std::span<double> out) const override;
  [[nodiscard]] DistributionPtr clone() const override;

 private:
  double rate_;
};

}  // namespace lazyckpt::stats
