# Empty compiler generated dependencies file for test_sim_tiered.
# This may be replaced when dependencies are built.
