file(REMOVE_RECURSE
  "CMakeFiles/test_sim_tiered.dir/test_sim_tiered.cpp.o"
  "CMakeFiles/test_sim_tiered.dir/test_sim_tiered.cpp.o.d"
  "test_sim_tiered"
  "test_sim_tiered.pdb"
  "test_sim_tiered[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_tiered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
