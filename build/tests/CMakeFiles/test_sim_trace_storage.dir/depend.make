# Empty dependencies file for test_sim_trace_storage.
# This may be replaced when dependencies are built.
