file(REMOVE_RECURSE
  "CMakeFiles/test_sim_trace_storage.dir/test_sim_trace_storage.cpp.o"
  "CMakeFiles/test_sim_trace_storage.dir/test_sim_trace_storage.cpp.o.d"
  "test_sim_trace_storage"
  "test_sim_trace_storage.pdb"
  "test_sim_trace_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_trace_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
