# Empty compiler generated dependencies file for test_cr_manager.
# This may be replaced when dependencies are built.
