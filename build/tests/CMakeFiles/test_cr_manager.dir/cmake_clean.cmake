file(REMOVE_RECURSE
  "CMakeFiles/test_cr_manager.dir/test_cr_manager.cpp.o"
  "CMakeFiles/test_cr_manager.dir/test_cr_manager.cpp.o.d"
  "test_cr_manager"
  "test_cr_manager.pdb"
  "test_cr_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cr_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
