file(REMOVE_RECURSE
  "CMakeFiles/test_async_and_equal_risk.dir/test_async_and_equal_risk.cpp.o"
  "CMakeFiles/test_async_and_equal_risk.dir/test_async_and_equal_risk.cpp.o.d"
  "test_async_and_equal_risk"
  "test_async_and_equal_risk.pdb"
  "test_async_and_equal_risk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_and_equal_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
