# Empty compiler generated dependencies file for test_async_and_equal_risk.
# This may be replaced when dependencies are built.
