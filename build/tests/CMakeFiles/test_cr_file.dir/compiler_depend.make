# Empty compiler generated dependencies file for test_cr_file.
# This may be replaced when dependencies are built.
