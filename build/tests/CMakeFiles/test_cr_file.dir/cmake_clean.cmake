file(REMOVE_RECURSE
  "CMakeFiles/test_cr_file.dir/test_cr_file.cpp.o"
  "CMakeFiles/test_cr_file.dir/test_cr_file.cpp.o.d"
  "test_cr_file"
  "test_cr_file.pdb"
  "test_cr_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cr_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
