file(REMOVE_RECURSE
  "CMakeFiles/test_campaign_and_fitted_ks.dir/test_campaign_and_fitted_ks.cpp.o"
  "CMakeFiles/test_campaign_and_fitted_ks.dir/test_campaign_and_fitted_ks.cpp.o.d"
  "test_campaign_and_fitted_ks"
  "test_campaign_and_fitted_ks.pdb"
  "test_campaign_and_fitted_ks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_campaign_and_fitted_ks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
