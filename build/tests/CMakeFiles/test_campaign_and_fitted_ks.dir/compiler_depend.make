# Empty compiler generated dependencies file for test_campaign_and_fitted_ks.
# This may be replaced when dependencies are built.
