# Empty compiler generated dependencies file for test_cr_replay.
# This may be replaced when dependencies are built.
