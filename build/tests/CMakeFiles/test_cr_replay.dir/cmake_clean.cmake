file(REMOVE_RECURSE
  "CMakeFiles/test_cr_replay.dir/test_cr_replay.cpp.o"
  "CMakeFiles/test_cr_replay.dir/test_cr_replay.cpp.o.d"
  "test_cr_replay"
  "test_cr_replay.pdb"
  "test_cr_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cr_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
