# Empty compiler generated dependencies file for test_sim_budget.
# This may be replaced when dependencies are built.
