file(REMOVE_RECURSE
  "CMakeFiles/test_sim_budget.dir/test_sim_budget.cpp.o"
  "CMakeFiles/test_sim_budget.dir/test_sim_budget.cpp.o.d"
  "test_sim_budget"
  "test_sim_budget.pdb"
  "test_sim_budget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
