# Empty compiler generated dependencies file for test_stats_extended.
# This may be replaced when dependencies are built.
