file(REMOVE_RECURSE
  "CMakeFiles/test_stats_extended.dir/test_stats_extended.cpp.o"
  "CMakeFiles/test_stats_extended.dir/test_stats_extended.cpp.o.d"
  "test_stats_extended"
  "test_stats_extended.pdb"
  "test_stats_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
