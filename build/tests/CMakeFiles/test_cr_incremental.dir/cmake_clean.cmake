file(REMOVE_RECURSE
  "CMakeFiles/test_cr_incremental.dir/test_cr_incremental.cpp.o"
  "CMakeFiles/test_cr_incremental.dir/test_cr_incremental.cpp.o.d"
  "test_cr_incremental"
  "test_cr_incremental.pdb"
  "test_cr_incremental[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cr_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
