# Empty dependencies file for test_cr_incremental.
# This may be replaced when dependencies are built.
