file(REMOVE_RECURSE
  "CMakeFiles/test_stats_fitting.dir/test_stats_fitting.cpp.o"
  "CMakeFiles/test_stats_fitting.dir/test_stats_fitting.cpp.o.d"
  "test_stats_fitting"
  "test_stats_fitting.pdb"
  "test_stats_fitting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
