# Empty dependencies file for test_analysis_bootstrap.
# This may be replaced when dependencies are built.
