file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_bootstrap.dir/test_analysis_bootstrap.cpp.o"
  "CMakeFiles/test_analysis_bootstrap.dir/test_analysis_bootstrap.cpp.o.d"
  "test_analysis_bootstrap"
  "test_analysis_bootstrap.pdb"
  "test_analysis_bootstrap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
