# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats_distributions[1]_include.cmake")
include("/root/repo/build/tests/test_stats_fitting[1]_include.cmake")
include("/root/repo/build/tests/test_stats_tests[1]_include.cmake")
include("/root/repo/build/tests/test_stats_extended[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sim_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_sim_tiered[1]_include.cmake")
include("/root/repo/build/tests/test_sim_budget[1]_include.cmake")
include("/root/repo/build/tests/test_campaign_and_fitted_ks[1]_include.cmake")
include("/root/repo/build/tests/test_async_and_equal_risk[1]_include.cmake")
include("/root/repo/build/tests/test_advisor[1]_include.cmake")
include("/root/repo/build/tests/test_failures[1]_include.cmake")
include("/root/repo/build/tests/test_analysis_bootstrap[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_cr_file[1]_include.cmake")
include("/root/repo/build/tests/test_cr_manager[1]_include.cmake")
include("/root/repo/build/tests/test_cr_replay[1]_include.cmake")
include("/root/repo/build/tests/test_cr_incremental[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_sim_trace_storage[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
