file(REMOVE_RECURSE
  "CMakeFiles/trace_driven_cr.dir/trace_driven_cr.cpp.o"
  "CMakeFiles/trace_driven_cr.dir/trace_driven_cr.cpp.o.d"
  "trace_driven_cr"
  "trace_driven_cr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_driven_cr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
