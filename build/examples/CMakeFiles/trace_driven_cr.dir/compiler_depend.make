# Empty compiler generated dependencies file for trace_driven_cr.
# This may be replaced when dependencies are built.
