file(REMOVE_RECURSE
  "CMakeFiles/adaptive_interval.dir/adaptive_interval.cpp.o"
  "CMakeFiles/adaptive_interval.dir/adaptive_interval.cpp.o.d"
  "adaptive_interval"
  "adaptive_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
