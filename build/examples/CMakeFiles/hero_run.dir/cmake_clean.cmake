file(REMOVE_RECURSE
  "CMakeFiles/hero_run.dir/hero_run.cpp.o"
  "CMakeFiles/hero_run.dir/hero_run.cpp.o.d"
  "hero_run"
  "hero_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
