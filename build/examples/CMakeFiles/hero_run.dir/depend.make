# Empty dependencies file for hero_run.
# This may be replaced when dependencies are built.
