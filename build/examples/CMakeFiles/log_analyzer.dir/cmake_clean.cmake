file(REMOVE_RECURSE
  "CMakeFiles/log_analyzer.dir/log_analyzer.cpp.o"
  "CMakeFiles/log_analyzer.dir/log_analyzer.cpp.o.d"
  "log_analyzer"
  "log_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
