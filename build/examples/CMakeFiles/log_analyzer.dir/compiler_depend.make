# Empty compiler generated dependencies file for log_analyzer.
# This may be replaced when dependencies are built.
