# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hero_run "/root/repo/build/examples/hero_run" "petascale-20K" "ilazy:0.6")
set_tests_properties(example_hero_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_driven_cr "/root/repo/build/examples/trace_driven_cr")
set_tests_properties(example_trace_driven_cr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_interval "/root/repo/build/examples/adaptive_interval")
set_tests_properties(example_adaptive_interval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_log_analyzer "/root/repo/build/examples/log_analyzer" "--demo")
set_tests_properties(example_log_analyzer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_gen "/root/repo/build/examples/trace_gen" "failures" "/root/repo/build/trace_gen_test.csv")
set_tests_properties(example_trace_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
