file(REMOVE_RECURSE
  "CMakeFiles/lazyckpt_cr.dir/checkpoint_file.cpp.o"
  "CMakeFiles/lazyckpt_cr.dir/checkpoint_file.cpp.o.d"
  "CMakeFiles/lazyckpt_cr.dir/clock.cpp.o"
  "CMakeFiles/lazyckpt_cr.dir/clock.cpp.o.d"
  "CMakeFiles/lazyckpt_cr.dir/driver.cpp.o"
  "CMakeFiles/lazyckpt_cr.dir/driver.cpp.o.d"
  "CMakeFiles/lazyckpt_cr.dir/incremental.cpp.o"
  "CMakeFiles/lazyckpt_cr.dir/incremental.cpp.o.d"
  "CMakeFiles/lazyckpt_cr.dir/manager.cpp.o"
  "CMakeFiles/lazyckpt_cr.dir/manager.cpp.o.d"
  "CMakeFiles/lazyckpt_cr.dir/region.cpp.o"
  "CMakeFiles/lazyckpt_cr.dir/region.cpp.o.d"
  "CMakeFiles/lazyckpt_cr.dir/trace_replay.cpp.o"
  "CMakeFiles/lazyckpt_cr.dir/trace_replay.cpp.o.d"
  "liblazyckpt_cr.a"
  "liblazyckpt_cr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyckpt_cr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
