
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cr/checkpoint_file.cpp" "src/cr/CMakeFiles/lazyckpt_cr.dir/checkpoint_file.cpp.o" "gcc" "src/cr/CMakeFiles/lazyckpt_cr.dir/checkpoint_file.cpp.o.d"
  "/root/repo/src/cr/clock.cpp" "src/cr/CMakeFiles/lazyckpt_cr.dir/clock.cpp.o" "gcc" "src/cr/CMakeFiles/lazyckpt_cr.dir/clock.cpp.o.d"
  "/root/repo/src/cr/driver.cpp" "src/cr/CMakeFiles/lazyckpt_cr.dir/driver.cpp.o" "gcc" "src/cr/CMakeFiles/lazyckpt_cr.dir/driver.cpp.o.d"
  "/root/repo/src/cr/incremental.cpp" "src/cr/CMakeFiles/lazyckpt_cr.dir/incremental.cpp.o" "gcc" "src/cr/CMakeFiles/lazyckpt_cr.dir/incremental.cpp.o.d"
  "/root/repo/src/cr/manager.cpp" "src/cr/CMakeFiles/lazyckpt_cr.dir/manager.cpp.o" "gcc" "src/cr/CMakeFiles/lazyckpt_cr.dir/manager.cpp.o.d"
  "/root/repo/src/cr/region.cpp" "src/cr/CMakeFiles/lazyckpt_cr.dir/region.cpp.o" "gcc" "src/cr/CMakeFiles/lazyckpt_cr.dir/region.cpp.o.d"
  "/root/repo/src/cr/trace_replay.cpp" "src/cr/CMakeFiles/lazyckpt_cr.dir/trace_replay.cpp.o" "gcc" "src/cr/CMakeFiles/lazyckpt_cr.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lazyckpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lazyckpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lazyckpt_io.dir/DependInfo.cmake"
  "/root/repo/build/src/failures/CMakeFiles/lazyckpt_failures.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lazyckpt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lazyckpt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
