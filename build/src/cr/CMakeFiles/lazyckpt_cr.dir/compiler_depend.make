# Empty compiler generated dependencies file for lazyckpt_cr.
# This may be replaced when dependencies are built.
