file(REMOVE_RECURSE
  "liblazyckpt_cr.a"
)
