# Empty compiler generated dependencies file for lazyckpt_io.
# This may be replaced when dependencies are built.
