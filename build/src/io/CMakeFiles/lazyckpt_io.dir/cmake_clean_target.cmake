file(REMOVE_RECURSE
  "liblazyckpt_io.a"
)
