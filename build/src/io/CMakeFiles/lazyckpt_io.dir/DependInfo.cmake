
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/bandwidth_trace.cpp" "src/io/CMakeFiles/lazyckpt_io.dir/bandwidth_trace.cpp.o" "gcc" "src/io/CMakeFiles/lazyckpt_io.dir/bandwidth_trace.cpp.o.d"
  "/root/repo/src/io/io_agent.cpp" "src/io/CMakeFiles/lazyckpt_io.dir/io_agent.cpp.o" "gcc" "src/io/CMakeFiles/lazyckpt_io.dir/io_agent.cpp.o.d"
  "/root/repo/src/io/storage_model.cpp" "src/io/CMakeFiles/lazyckpt_io.dir/storage_model.cpp.o" "gcc" "src/io/CMakeFiles/lazyckpt_io.dir/storage_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lazyckpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
