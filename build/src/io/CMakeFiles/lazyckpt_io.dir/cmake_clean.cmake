file(REMOVE_RECURSE
  "CMakeFiles/lazyckpt_io.dir/bandwidth_trace.cpp.o"
  "CMakeFiles/lazyckpt_io.dir/bandwidth_trace.cpp.o.d"
  "CMakeFiles/lazyckpt_io.dir/io_agent.cpp.o"
  "CMakeFiles/lazyckpt_io.dir/io_agent.cpp.o.d"
  "CMakeFiles/lazyckpt_io.dir/storage_model.cpp.o"
  "CMakeFiles/lazyckpt_io.dir/storage_model.cpp.o.d"
  "liblazyckpt_io.a"
  "liblazyckpt_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyckpt_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
