file(REMOVE_RECURSE
  "liblazyckpt_common.a"
)
