# Empty dependencies file for lazyckpt_common.
# This may be replaced when dependencies are built.
