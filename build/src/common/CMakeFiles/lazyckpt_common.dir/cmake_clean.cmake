file(REMOVE_RECURSE
  "CMakeFiles/lazyckpt_common.dir/crc32.cpp.o"
  "CMakeFiles/lazyckpt_common.dir/crc32.cpp.o.d"
  "CMakeFiles/lazyckpt_common.dir/csv.cpp.o"
  "CMakeFiles/lazyckpt_common.dir/csv.cpp.o.d"
  "CMakeFiles/lazyckpt_common.dir/error.cpp.o"
  "CMakeFiles/lazyckpt_common.dir/error.cpp.o.d"
  "CMakeFiles/lazyckpt_common.dir/histogram.cpp.o"
  "CMakeFiles/lazyckpt_common.dir/histogram.cpp.o.d"
  "CMakeFiles/lazyckpt_common.dir/random.cpp.o"
  "CMakeFiles/lazyckpt_common.dir/random.cpp.o.d"
  "CMakeFiles/lazyckpt_common.dir/rle.cpp.o"
  "CMakeFiles/lazyckpt_common.dir/rle.cpp.o.d"
  "CMakeFiles/lazyckpt_common.dir/table.cpp.o"
  "CMakeFiles/lazyckpt_common.dir/table.cpp.o.d"
  "liblazyckpt_common.a"
  "liblazyckpt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyckpt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
