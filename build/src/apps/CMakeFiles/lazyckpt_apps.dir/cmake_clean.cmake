file(REMOVE_RECURSE
  "CMakeFiles/lazyckpt_apps.dir/catalog.cpp.o"
  "CMakeFiles/lazyckpt_apps.dir/catalog.cpp.o.d"
  "liblazyckpt_apps.a"
  "liblazyckpt_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyckpt_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
