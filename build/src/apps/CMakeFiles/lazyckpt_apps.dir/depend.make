# Empty dependencies file for lazyckpt_apps.
# This may be replaced when dependencies are built.
