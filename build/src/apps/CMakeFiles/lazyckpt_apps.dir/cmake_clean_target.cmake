file(REMOVE_RECURSE
  "liblazyckpt_apps.a"
)
