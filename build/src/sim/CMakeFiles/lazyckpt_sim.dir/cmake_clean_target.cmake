file(REMOVE_RECURSE
  "liblazyckpt_sim.a"
)
