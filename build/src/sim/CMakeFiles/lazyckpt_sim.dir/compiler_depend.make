# Empty compiler generated dependencies file for lazyckpt_sim.
# This may be replaced when dependencies are built.
