
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/advisor.cpp" "src/sim/CMakeFiles/lazyckpt_sim.dir/advisor.cpp.o" "gcc" "src/sim/CMakeFiles/lazyckpt_sim.dir/advisor.cpp.o.d"
  "/root/repo/src/sim/campaign.cpp" "src/sim/CMakeFiles/lazyckpt_sim.dir/campaign.cpp.o" "gcc" "src/sim/CMakeFiles/lazyckpt_sim.dir/campaign.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/lazyckpt_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/lazyckpt_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/failure_source.cpp" "src/sim/CMakeFiles/lazyckpt_sim.dir/failure_source.cpp.o" "gcc" "src/sim/CMakeFiles/lazyckpt_sim.dir/failure_source.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/lazyckpt_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/lazyckpt_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/sim/CMakeFiles/lazyckpt_sim.dir/sweep.cpp.o" "gcc" "src/sim/CMakeFiles/lazyckpt_sim.dir/sweep.cpp.o.d"
  "/root/repo/src/sim/tiered.cpp" "src/sim/CMakeFiles/lazyckpt_sim.dir/tiered.cpp.o" "gcc" "src/sim/CMakeFiles/lazyckpt_sim.dir/tiered.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lazyckpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lazyckpt_io.dir/DependInfo.cmake"
  "/root/repo/build/src/failures/CMakeFiles/lazyckpt_failures.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lazyckpt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lazyckpt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
