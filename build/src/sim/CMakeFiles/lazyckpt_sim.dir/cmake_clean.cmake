file(REMOVE_RECURSE
  "CMakeFiles/lazyckpt_sim.dir/advisor.cpp.o"
  "CMakeFiles/lazyckpt_sim.dir/advisor.cpp.o.d"
  "CMakeFiles/lazyckpt_sim.dir/campaign.cpp.o"
  "CMakeFiles/lazyckpt_sim.dir/campaign.cpp.o.d"
  "CMakeFiles/lazyckpt_sim.dir/engine.cpp.o"
  "CMakeFiles/lazyckpt_sim.dir/engine.cpp.o.d"
  "CMakeFiles/lazyckpt_sim.dir/failure_source.cpp.o"
  "CMakeFiles/lazyckpt_sim.dir/failure_source.cpp.o.d"
  "CMakeFiles/lazyckpt_sim.dir/metrics.cpp.o"
  "CMakeFiles/lazyckpt_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/lazyckpt_sim.dir/sweep.cpp.o"
  "CMakeFiles/lazyckpt_sim.dir/sweep.cpp.o.d"
  "CMakeFiles/lazyckpt_sim.dir/tiered.cpp.o"
  "CMakeFiles/lazyckpt_sim.dir/tiered.cpp.o.d"
  "liblazyckpt_sim.a"
  "liblazyckpt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyckpt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
