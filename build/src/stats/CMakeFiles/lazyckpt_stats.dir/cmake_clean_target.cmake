file(REMOVE_RECURSE
  "liblazyckpt_stats.a"
)
