
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/anderson_darling.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/anderson_darling.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/anderson_darling.cpp.o.d"
  "/root/repo/src/stats/autocorrelation.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/autocorrelation.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/autocorrelation.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distribution.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/distribution.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/distribution.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/exponential.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/exponential.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/exponential.cpp.o.d"
  "/root/repo/src/stats/fitting.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/fitting.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/fitting.cpp.o.d"
  "/root/repo/src/stats/gamma.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/gamma.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/gamma.cpp.o.d"
  "/root/repo/src/stats/ks_test.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/ks_test.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/ks_test.cpp.o.d"
  "/root/repo/src/stats/lognormal.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/lognormal.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/lognormal.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/normal.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/normal.cpp.o.d"
  "/root/repo/src/stats/qq.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/qq.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/qq.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/special.cpp.o.d"
  "/root/repo/src/stats/weibull.cpp" "src/stats/CMakeFiles/lazyckpt_stats.dir/weibull.cpp.o" "gcc" "src/stats/CMakeFiles/lazyckpt_stats.dir/weibull.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lazyckpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
