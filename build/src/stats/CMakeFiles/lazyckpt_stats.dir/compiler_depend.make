# Empty compiler generated dependencies file for lazyckpt_stats.
# This may be replaced when dependencies are built.
