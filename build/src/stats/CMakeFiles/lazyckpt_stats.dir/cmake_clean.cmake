file(REMOVE_RECURSE
  "CMakeFiles/lazyckpt_stats.dir/anderson_darling.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/anderson_darling.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/autocorrelation.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/autocorrelation.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/descriptive.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/distribution.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/distribution.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/ecdf.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/exponential.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/exponential.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/fitting.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/fitting.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/gamma.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/gamma.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/ks_test.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/lognormal.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/lognormal.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/normal.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/normal.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/qq.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/qq.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/special.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/special.cpp.o.d"
  "CMakeFiles/lazyckpt_stats.dir/weibull.cpp.o"
  "CMakeFiles/lazyckpt_stats.dir/weibull.cpp.o.d"
  "liblazyckpt_stats.a"
  "liblazyckpt_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyckpt_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
