# Empty dependencies file for lazyckpt_failures.
# This may be replaced when dependencies are built.
