
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/failures/agent.cpp" "src/failures/CMakeFiles/lazyckpt_failures.dir/agent.cpp.o" "gcc" "src/failures/CMakeFiles/lazyckpt_failures.dir/agent.cpp.o.d"
  "/root/repo/src/failures/analysis.cpp" "src/failures/CMakeFiles/lazyckpt_failures.dir/analysis.cpp.o" "gcc" "src/failures/CMakeFiles/lazyckpt_failures.dir/analysis.cpp.o.d"
  "/root/repo/src/failures/failure_event.cpp" "src/failures/CMakeFiles/lazyckpt_failures.dir/failure_event.cpp.o" "gcc" "src/failures/CMakeFiles/lazyckpt_failures.dir/failure_event.cpp.o.d"
  "/root/repo/src/failures/generator.cpp" "src/failures/CMakeFiles/lazyckpt_failures.dir/generator.cpp.o" "gcc" "src/failures/CMakeFiles/lazyckpt_failures.dir/generator.cpp.o.d"
  "/root/repo/src/failures/scaling.cpp" "src/failures/CMakeFiles/lazyckpt_failures.dir/scaling.cpp.o" "gcc" "src/failures/CMakeFiles/lazyckpt_failures.dir/scaling.cpp.o.d"
  "/root/repo/src/failures/trace.cpp" "src/failures/CMakeFiles/lazyckpt_failures.dir/trace.cpp.o" "gcc" "src/failures/CMakeFiles/lazyckpt_failures.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/lazyckpt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lazyckpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
