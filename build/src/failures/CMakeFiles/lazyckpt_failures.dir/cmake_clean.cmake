file(REMOVE_RECURSE
  "CMakeFiles/lazyckpt_failures.dir/agent.cpp.o"
  "CMakeFiles/lazyckpt_failures.dir/agent.cpp.o.d"
  "CMakeFiles/lazyckpt_failures.dir/analysis.cpp.o"
  "CMakeFiles/lazyckpt_failures.dir/analysis.cpp.o.d"
  "CMakeFiles/lazyckpt_failures.dir/failure_event.cpp.o"
  "CMakeFiles/lazyckpt_failures.dir/failure_event.cpp.o.d"
  "CMakeFiles/lazyckpt_failures.dir/generator.cpp.o"
  "CMakeFiles/lazyckpt_failures.dir/generator.cpp.o.d"
  "CMakeFiles/lazyckpt_failures.dir/scaling.cpp.o"
  "CMakeFiles/lazyckpt_failures.dir/scaling.cpp.o.d"
  "CMakeFiles/lazyckpt_failures.dir/trace.cpp.o"
  "CMakeFiles/lazyckpt_failures.dir/trace.cpp.o.d"
  "liblazyckpt_failures.a"
  "liblazyckpt_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyckpt_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
