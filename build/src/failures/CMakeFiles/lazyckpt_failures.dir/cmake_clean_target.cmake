file(REMOVE_RECURSE
  "liblazyckpt_failures.a"
)
