file(REMOVE_RECURSE
  "CMakeFiles/lazyckpt_core.dir/model/bounds.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/model/bounds.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/model/lost_work.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/model/lost_work.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/model/machine.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/model/machine.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/model/oci.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/model/oci.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/model/runtime_model.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/model/runtime_model.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/policy/bounded_ilazy.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/policy/bounded_ilazy.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/policy/dynamic_oci.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/policy/dynamic_oci.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/policy/equal_risk.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/policy/equal_risk.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/policy/factory.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/policy/factory.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/policy/ilazy.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/policy/ilazy.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/policy/linear.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/policy/linear.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/policy/periodic.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/policy/periodic.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/policy/policy.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/policy/policy.cpp.o.d"
  "CMakeFiles/lazyckpt_core.dir/policy/skip.cpp.o"
  "CMakeFiles/lazyckpt_core.dir/policy/skip.cpp.o.d"
  "liblazyckpt_core.a"
  "liblazyckpt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyckpt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
