
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/model/bounds.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/model/bounds.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/model/bounds.cpp.o.d"
  "/root/repo/src/core/model/lost_work.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/model/lost_work.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/model/lost_work.cpp.o.d"
  "/root/repo/src/core/model/machine.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/model/machine.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/model/machine.cpp.o.d"
  "/root/repo/src/core/model/oci.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/model/oci.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/model/oci.cpp.o.d"
  "/root/repo/src/core/model/runtime_model.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/model/runtime_model.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/model/runtime_model.cpp.o.d"
  "/root/repo/src/core/policy/bounded_ilazy.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/policy/bounded_ilazy.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/policy/bounded_ilazy.cpp.o.d"
  "/root/repo/src/core/policy/dynamic_oci.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/policy/dynamic_oci.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/policy/dynamic_oci.cpp.o.d"
  "/root/repo/src/core/policy/equal_risk.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/policy/equal_risk.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/policy/equal_risk.cpp.o.d"
  "/root/repo/src/core/policy/factory.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/policy/factory.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/policy/factory.cpp.o.d"
  "/root/repo/src/core/policy/ilazy.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/policy/ilazy.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/policy/ilazy.cpp.o.d"
  "/root/repo/src/core/policy/linear.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/policy/linear.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/policy/linear.cpp.o.d"
  "/root/repo/src/core/policy/periodic.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/policy/periodic.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/policy/periodic.cpp.o.d"
  "/root/repo/src/core/policy/policy.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/policy/policy.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/policy/policy.cpp.o.d"
  "/root/repo/src/core/policy/skip.cpp" "src/core/CMakeFiles/lazyckpt_core.dir/policy/skip.cpp.o" "gcc" "src/core/CMakeFiles/lazyckpt_core.dir/policy/skip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/lazyckpt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lazyckpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
