# Empty dependencies file for lazyckpt_core.
# This may be replaced when dependencies are built.
