file(REMOVE_RECURSE
  "liblazyckpt_core.a"
)
