# Empty dependencies file for fig10_lost_work_weibull.
# This may be replaced when dependencies are built.
