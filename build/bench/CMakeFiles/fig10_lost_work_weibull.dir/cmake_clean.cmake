file(REMOVE_RECURSE
  "CMakeFiles/fig10_lost_work_weibull.dir/fig10_lost_work_weibull.cpp.o"
  "CMakeFiles/fig10_lost_work_weibull.dir/fig10_lost_work_weibull.cpp.o.d"
  "fig10_lost_work_weibull"
  "fig10_lost_work_weibull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lost_work_weibull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
