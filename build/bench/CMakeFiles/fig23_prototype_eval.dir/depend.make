# Empty dependencies file for fig23_prototype_eval.
# This may be replaced when dependencies are built.
