file(REMOVE_RECURSE
  "CMakeFiles/fig23_prototype_eval.dir/fig23_prototype_eval.cpp.o"
  "CMakeFiles/fig23_prototype_eval.dir/fig23_prototype_eval.cpp.o.d"
  "fig23_prototype_eval"
  "fig23_prototype_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_prototype_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
