file(REMOVE_RECURSE
  "CMakeFiles/fig18_bandwidth.dir/fig18_bandwidth.cpp.o"
  "CMakeFiles/fig18_bandwidth.dir/fig18_bandwidth.cpp.o.d"
  "fig18_bandwidth"
  "fig18_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
