# Empty compiler generated dependencies file for fig18_bandwidth.
# This may be replaced when dependencies are built.
