# Empty compiler generated dependencies file for fig03_lost_work_fraction.
# This may be replaced when dependencies are built.
