
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_async.cpp" "bench/CMakeFiles/ablation_async.dir/ablation_async.cpp.o" "gcc" "bench/CMakeFiles/ablation_async.dir/ablation_async.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cr/CMakeFiles/lazyckpt_cr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lazyckpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lazyckpt_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lazyckpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lazyckpt_io.dir/DependInfo.cmake"
  "/root/repo/build/src/failures/CMakeFiles/lazyckpt_failures.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lazyckpt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lazyckpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
