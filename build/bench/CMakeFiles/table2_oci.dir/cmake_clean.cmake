file(REMOVE_RECURSE
  "CMakeFiles/table2_oci.dir/table2_oci.cpp.o"
  "CMakeFiles/table2_oci.dir/table2_oci.cpp.o.d"
  "table2_oci"
  "table2_oci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_oci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
