# Empty compiler generated dependencies file for table2_oci.
# This may be replaced when dependencies are built.
