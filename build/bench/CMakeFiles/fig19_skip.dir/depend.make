# Empty dependencies file for fig19_skip.
# This may be replaced when dependencies are built.
