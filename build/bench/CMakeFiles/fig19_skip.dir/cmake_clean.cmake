file(REMOVE_RECURSE
  "CMakeFiles/fig19_skip.dir/fig19_skip.cpp.o"
  "CMakeFiles/fig19_skip.dir/fig19_skip.cpp.o.d"
  "fig19_skip"
  "fig19_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
