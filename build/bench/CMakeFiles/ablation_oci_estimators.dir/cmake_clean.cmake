file(REMOVE_RECURSE
  "CMakeFiles/ablation_oci_estimators.dir/ablation_oci_estimators.cpp.o"
  "CMakeFiles/ablation_oci_estimators.dir/ablation_oci_estimators.cpp.o.d"
  "ablation_oci_estimators"
  "ablation_oci_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_oci_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
