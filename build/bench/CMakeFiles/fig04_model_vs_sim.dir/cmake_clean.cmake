file(REMOVE_RECURSE
  "CMakeFiles/fig04_model_vs_sim.dir/fig04_model_vs_sim.cpp.o"
  "CMakeFiles/fig04_model_vs_sim.dir/fig04_model_vs_sim.cpp.o.d"
  "fig04_model_vs_sim"
  "fig04_model_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_model_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
