# Empty dependencies file for fig04_model_vs_sim.
# This may be replaced when dependencies are built.
