# Empty dependencies file for ablation_burst_process.
# This may be replaced when dependencies are built.
