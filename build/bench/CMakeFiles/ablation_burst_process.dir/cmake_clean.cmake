file(REMOVE_RECURSE
  "CMakeFiles/ablation_burst_process.dir/ablation_burst_process.cpp.o"
  "CMakeFiles/ablation_burst_process.dir/ablation_burst_process.cpp.o.d"
  "ablation_burst_process"
  "ablation_burst_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_burst_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
