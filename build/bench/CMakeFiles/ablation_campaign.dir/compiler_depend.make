# Empty compiler generated dependencies file for ablation_campaign.
# This may be replaced when dependencies are built.
