file(REMOVE_RECURSE
  "CMakeFiles/ablation_campaign.dir/ablation_campaign.cpp.o"
  "CMakeFiles/ablation_campaign.dir/ablation_campaign.cpp.o.d"
  "ablation_campaign"
  "ablation_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
