file(REMOVE_RECURSE
  "CMakeFiles/fig14_increased_oci.dir/fig14_increased_oci.cpp.o"
  "CMakeFiles/fig14_increased_oci.dir/fig14_increased_oci.cpp.o.d"
  "fig14_increased_oci"
  "fig14_increased_oci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_increased_oci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
