# Empty compiler generated dependencies file for fig14_increased_oci.
# This may be replaced when dependencies are built.
