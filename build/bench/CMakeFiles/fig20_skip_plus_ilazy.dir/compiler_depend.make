# Empty compiler generated dependencies file for fig20_skip_plus_ilazy.
# This may be replaced when dependencies are built.
