file(REMOVE_RECURSE
  "CMakeFiles/fig20_skip_plus_ilazy.dir/fig20_skip_plus_ilazy.cpp.o"
  "CMakeFiles/fig20_skip_plus_ilazy.dir/fig20_skip_plus_ilazy.cpp.o.d"
  "fig20_skip_plus_ilazy"
  "fig20_skip_plus_ilazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_skip_plus_ilazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
