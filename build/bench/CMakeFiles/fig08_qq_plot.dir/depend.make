# Empty dependencies file for fig08_qq_plot.
# This may be replaced when dependencies are built.
