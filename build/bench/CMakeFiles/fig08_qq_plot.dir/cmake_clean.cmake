file(REMOVE_RECURSE
  "CMakeFiles/fig08_qq_plot.dir/fig08_qq_plot.cpp.o"
  "CMakeFiles/fig08_qq_plot.dir/fig08_qq_plot.cpp.o.d"
  "fig08_qq_plot"
  "fig08_qq_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_qq_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
