# Empty compiler generated dependencies file for table3_write_volume.
# This may be replaced when dependencies are built.
