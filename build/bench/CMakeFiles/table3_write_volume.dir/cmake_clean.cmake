file(REMOVE_RECURSE
  "CMakeFiles/table3_write_volume.dir/table3_write_volume.cpp.o"
  "CMakeFiles/table3_write_volume.dir/table3_write_volume.cpp.o.d"
  "table3_write_volume"
  "table3_write_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_write_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
