file(REMOVE_RECURSE
  "CMakeFiles/fig01_io_breakdown.dir/fig01_io_breakdown.cpp.o"
  "CMakeFiles/fig01_io_breakdown.dir/fig01_io_breakdown.cpp.o.d"
  "fig01_io_breakdown"
  "fig01_io_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_io_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
