# Empty dependencies file for fig06_temporal_locality.
# This may be replaced when dependencies are built.
