# Empty compiler generated dependencies file for fig21_bounded_ilazy.
# This may be replaced when dependencies are built.
