file(REMOVE_RECURSE
  "CMakeFiles/fig21_bounded_ilazy.dir/fig21_bounded_ilazy.cpp.o"
  "CMakeFiles/fig21_bounded_ilazy.dir/fig21_bounded_ilazy.cpp.o.d"
  "fig21_bounded_ilazy"
  "fig21_bounded_ilazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_bounded_ilazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
