file(REMOVE_RECURSE
  "CMakeFiles/fig16_linear_vs_ilazy.dir/fig16_linear_vs_ilazy.cpp.o"
  "CMakeFiles/fig16_linear_vs_ilazy.dir/fig16_linear_vs_ilazy.cpp.o.d"
  "fig16_linear_vs_ilazy"
  "fig16_linear_vs_ilazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_linear_vs_ilazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
