# Empty compiler generated dependencies file for fig16_linear_vs_ilazy.
# This may be replaced when dependencies are built.
