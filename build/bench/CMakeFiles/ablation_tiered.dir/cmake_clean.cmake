file(REMOVE_RECURSE
  "CMakeFiles/ablation_tiered.dir/ablation_tiered.cpp.o"
  "CMakeFiles/ablation_tiered.dir/ablation_tiered.cpp.o.d"
  "ablation_tiered"
  "ablation_tiered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tiered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
