# Empty compiler generated dependencies file for ablation_tiered.
# This may be replaced when dependencies are built.
