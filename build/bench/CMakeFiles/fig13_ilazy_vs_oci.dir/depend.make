# Empty dependencies file for fig13_ilazy_vs_oci.
# This may be replaced when dependencies are built.
