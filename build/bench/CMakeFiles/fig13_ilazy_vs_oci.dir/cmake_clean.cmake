file(REMOVE_RECURSE
  "CMakeFiles/fig13_ilazy_vs_oci.dir/fig13_ilazy_vs_oci.cpp.o"
  "CMakeFiles/fig13_ilazy_vs_oci.dir/fig13_ilazy_vs_oci.cpp.o.d"
  "fig13_ilazy_vs_oci"
  "fig13_ilazy_vs_oci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ilazy_vs_oci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
