file(REMOVE_RECURSE
  "CMakeFiles/fig05_oci_vs_hourly.dir/fig05_oci_vs_hourly.cpp.o"
  "CMakeFiles/fig05_oci_vs_hourly.dir/fig05_oci_vs_hourly.cpp.o.d"
  "fig05_oci_vs_hourly"
  "fig05_oci_vs_hourly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_oci_vs_hourly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
