# Empty dependencies file for fig05_oci_vs_hourly.
# This may be replaced when dependencies are built.
