# Empty compiler generated dependencies file for fig07_ks_test.
# This may be replaced when dependencies are built.
