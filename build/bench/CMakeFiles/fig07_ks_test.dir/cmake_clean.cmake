file(REMOVE_RECURSE
  "CMakeFiles/fig07_ks_test.dir/fig07_ks_test.cpp.o"
  "CMakeFiles/fig07_ks_test.dir/fig07_ks_test.cpp.o.d"
  "fig07_ks_test"
  "fig07_ks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
