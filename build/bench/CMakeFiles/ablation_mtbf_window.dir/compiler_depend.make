# Empty compiler generated dependencies file for ablation_mtbf_window.
# This may be replaced when dependencies are built.
