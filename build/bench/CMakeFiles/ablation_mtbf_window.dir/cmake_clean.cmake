file(REMOVE_RECURSE
  "CMakeFiles/ablation_mtbf_window.dir/ablation_mtbf_window.cpp.o"
  "CMakeFiles/ablation_mtbf_window.dir/ablation_mtbf_window.cpp.o.d"
  "ablation_mtbf_window"
  "ablation_mtbf_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mtbf_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
