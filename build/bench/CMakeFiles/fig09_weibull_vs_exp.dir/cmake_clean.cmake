file(REMOVE_RECURSE
  "CMakeFiles/fig09_weibull_vs_exp.dir/fig09_weibull_vs_exp.cpp.o"
  "CMakeFiles/fig09_weibull_vs_exp.dir/fig09_weibull_vs_exp.cpp.o.d"
  "fig09_weibull_vs_exp"
  "fig09_weibull_vs_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_weibull_vs_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
