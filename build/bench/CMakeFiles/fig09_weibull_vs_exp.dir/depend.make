# Empty dependencies file for fig09_weibull_vs_exp.
# This may be replaced when dependencies are built.
