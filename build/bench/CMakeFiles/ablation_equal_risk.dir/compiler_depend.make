# Empty compiler generated dependencies file for ablation_equal_risk.
# This may be replaced when dependencies are built.
