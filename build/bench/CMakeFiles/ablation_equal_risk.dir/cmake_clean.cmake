file(REMOVE_RECURSE
  "CMakeFiles/ablation_equal_risk.dir/ablation_equal_risk.cpp.o"
  "CMakeFiles/ablation_equal_risk.dir/ablation_equal_risk.cpp.o.d"
  "ablation_equal_risk"
  "ablation_equal_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_equal_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
