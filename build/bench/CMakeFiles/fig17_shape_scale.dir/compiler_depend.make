# Empty compiler generated dependencies file for fig17_shape_scale.
# This may be replaced when dependencies are built.
