file(REMOVE_RECURSE
  "CMakeFiles/fig17_shape_scale.dir/fig17_shape_scale.cpp.o"
  "CMakeFiles/fig17_shape_scale.dir/fig17_shape_scale.cpp.o.d"
  "fig17_shape_scale"
  "fig17_shape_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_shape_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
