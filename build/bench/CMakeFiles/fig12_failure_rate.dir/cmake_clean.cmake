file(REMOVE_RECURSE
  "CMakeFiles/fig12_failure_rate.dir/fig12_failure_rate.cpp.o"
  "CMakeFiles/fig12_failure_rate.dir/fig12_failure_rate.cpp.o.d"
  "fig12_failure_rate"
  "fig12_failure_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_failure_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
