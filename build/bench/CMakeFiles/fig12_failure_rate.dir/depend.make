# Empty dependencies file for fig12_failure_rate.
# This may be replaced when dependencies are built.
